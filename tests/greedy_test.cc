#include <gtest/gtest.h>

#include "core/greedy.h"
#include "core/spread_oracle.h"
#include "tests/test_util.h"

namespace isa::core {
namespace {

AdvertiserSpec Ad(double cpe, double budget) {
  AdvertiserSpec a;
  a.cpe = cpe;
  a.budget = budget;
  a.gamma = topic::TopicDistribution::Uniform(1);
  return a;
}

// Star from node 0 to 1..4 with p = 1: sigma({0}) = 5, sigma({k}) = 1.
test::OwnedInstance StarInstance(double budget, std::vector<double> costs) {
  return test::MakeInstance(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}}, 1.0,
                            {Ad(1.0, budget)}, {std::move(costs)});
}

TEST(CaGreedyTest, PicksMaxMarginalRevenueFirst) {
  auto owned = StarInstance(100.0, {1, 1, 1, 1, 1});
  auto oracle = ExactSpreadOracle::Create(*owned.instance);
  ASSERT_TRUE(oracle.ok());
  GreedyOptions opt;
  opt.cost_sensitive = false;
  auto res = RunGreedy(*owned.instance, *oracle.value(), opt);
  ASSERT_TRUE(res.ok());
  ASSERT_FALSE(res.value().steps.empty());
  EXPECT_EQ(res.value().steps[0].node, 0u);  // hub has max spread
  EXPECT_DOUBLE_EQ(res.value().steps[0].marginal_revenue, 5.0);
}

TEST(CaGreedyTest, RespectsBudget) {
  // Budget 6: hub costs payment 5 + 1 = 6; nothing else fits after.
  auto owned = StarInstance(6.0, {1, 1, 1, 1, 1});
  auto oracle = ExactSpreadOracle::Create(*owned.instance);
  ASSERT_TRUE(oracle.ok());
  auto res = RunGreedy(*owned.instance, *oracle.value(), {});
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().allocation.seed_sets[0].size(), 1u);
  EXPECT_DOUBLE_EQ(res.value().total_revenue, 5.0);
  EXPECT_LE(res.value().payment[0], 6.0 + 1e-9);
}

TEST(CaGreedyTest, FillsRemainingBudgetWithLeaves) {
  // Budget 10: hub (payment 6), then leaves add revenue 0 (already covered)
  // and cost 1 each — zero marginal revenue keeps CA from adding them?
  // No: CA adds zero-gain pairs only if they score max; all remaining have
  // gain 0, ties resolve to first; they remain feasible until budget is hit.
  auto owned = StarInstance(8.0, {1, 1, 1, 1, 1});
  auto oracle = ExactSpreadOracle::Create(*owned.instance);
  ASSERT_TRUE(oracle.ok());
  auto res = RunGreedy(*owned.instance, *oracle.value(), {});
  ASSERT_TRUE(res.ok());
  // Revenue cannot exceed 5 (all nodes covered by the hub).
  EXPECT_DOUBLE_EQ(res.value().total_revenue, 5.0);
  EXPECT_LE(res.value().payment[0], 8.0 + 1e-9);
  EXPECT_TRUE(res.value().allocation.IsDisjoint(5));
}

TEST(CsGreedyTest, PrefersCheapSeedsPerUnitRevenue) {
  // Hub costs 100, leaves cost 0.1: CS must start with a leaf... but hub
  // ratio = 5/105 = 0.048, leaf ratio = 1/1.1 = 0.909.
  auto owned = StarInstance(1000.0, {100, 0.1, 0.1, 0.1, 0.1});
  auto oracle = ExactSpreadOracle::Create(*owned.instance);
  ASSERT_TRUE(oracle.ok());
  GreedyOptions opt;
  opt.cost_sensitive = true;
  auto res = RunGreedy(*owned.instance, *oracle.value(), opt);
  ASSERT_TRUE(res.ok());
  ASSERT_FALSE(res.value().steps.empty());
  EXPECT_NE(res.value().steps[0].node, 0u);
}

TEST(CsGreedyTest, CaAndCsAgreeOnUniformCosts) {
  auto owned = StarInstance(100.0, {1, 1, 1, 1, 1});
  auto oracle_a = ExactSpreadOracle::Create(*owned.instance);
  auto oracle_b = ExactSpreadOracle::Create(*owned.instance);
  GreedyOptions ca, cs;
  ca.cost_sensitive = false;
  cs.cost_sensitive = true;
  auto ra = RunGreedy(*owned.instance, *oracle_a.value(), ca);
  auto rb = RunGreedy(*owned.instance, *oracle_b.value(), cs);
  ASSERT_TRUE(ra.ok() && rb.ok());
  // With equal costs both rules agree on the first pick (the hub).
  EXPECT_EQ(ra.value().steps[0].node, rb.value().steps[0].node);
}

TEST(GreedyTest, MultiAdvertiserDisjointness) {
  // Two identical ads compete for the same hub; only one can have it.
  auto owned = test::MakeInstance(
      5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}}, 1.0,
      {Ad(1.0, 100.0), Ad(1.0, 100.0)},
      {{1, 1, 1, 1, 1}, {1, 1, 1, 1, 1}});
  auto oracle = ExactSpreadOracle::Create(*owned.instance);
  ASSERT_TRUE(oracle.ok());
  auto res = RunGreedy(*owned.instance, *oracle.value(), {});
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res.value().allocation.IsDisjoint(5));
  // The hub is assigned to exactly one ad.
  int hub_count = 0;
  for (const auto& s : res.value().allocation.seed_sets) {
    for (auto u : s) hub_count += u == 0;
  }
  EXPECT_EQ(hub_count, 1);
}

TEST(GreedyTest, MaxSeedsCap) {
  auto owned = StarInstance(1000.0, {1, 1, 1, 1, 1});
  auto oracle = ExactSpreadOracle::Create(*owned.instance);
  ASSERT_TRUE(oracle.ok());
  GreedyOptions opt;
  opt.max_seeds = 2;
  auto res = RunGreedy(*owned.instance, *oracle.value(), opt);
  ASSERT_TRUE(res.ok());
  EXPECT_LE(res.value().allocation.TotalSeeds(), 2u);
}

TEST(GreedyTest, EmptyGraphRejected) {
  auto g = test::MustGraph(0, {});
  auto topics = topic::MakeUniform(g, 1, 0.5);
  // Can't even build an instance with 0 nodes and an ad needing incentives;
  // exercise RunGreedy's own guard via a 1-node graph with no edges is not
  // possible (MakeUniform needs edges sized arrays, 0 edges fine).
  auto owned = test::MakeInstance(1, {}, 0.5, {Ad(1.0, 10.0)}, {{0.5}});
  auto oracle = ExactSpreadOracle::Create(*owned.instance);
  ASSERT_TRUE(oracle.ok());
  auto res = RunGreedy(*owned.instance, *oracle.value(), {});
  ASSERT_TRUE(res.ok());
  // Single node, no edges: spread 1, payment 1*1 + 0.5 <= 10 -> selected.
  EXPECT_EQ(res.value().allocation.TotalSeeds(), 1u);
}

TEST(GreedyTest, StepsRecordMarginals) {
  auto owned = StarInstance(100.0, {2, 1, 1, 1, 1});
  auto oracle = ExactSpreadOracle::Create(*owned.instance);
  ASSERT_TRUE(oracle.ok());
  auto res = RunGreedy(*owned.instance, *oracle.value(), {});
  ASSERT_TRUE(res.ok());
  ASSERT_FALSE(res.value().steps.empty());
  const auto& s0 = res.value().steps[0];
  EXPECT_DOUBLE_EQ(s0.marginal_revenue, 5.0);
  EXPECT_DOUBLE_EQ(s0.marginal_payment, 7.0);  // 5 revenue + 2 incentive
  EXPECT_GT(res.value().oracle_queries, 0u);
}

TEST(GreedyTest, McOracleEndToEnd) {
  auto owned = StarInstance(100.0, {1, 1, 1, 1, 1});
  McSpreadOracle oracle(*owned.instance, 2000, 3);
  auto res = RunGreedy(*owned.instance, oracle, {});
  ASSERT_TRUE(res.ok());
  ASSERT_FALSE(res.value().steps.empty());
  EXPECT_EQ(res.value().steps[0].node, 0u);
}

}  // namespace
}  // namespace isa::core
