// Self-healing cold tier: a spilled RR set is logically a CACHE entry —
// set i is a pure function of (base_seed, i) — so a permanently failed
// chunk read is recovered by re-sampling the chunk's id range from its
// recorded provenance seed instead of aborting. This suite covers the
// recovery ladder rung by rung (transient retry → fresh re-read →
// re-sample → fail-stop when recovery is impossible), the footer
// cross-check that rejects a wrong regeneration, the write-side
// degradation (ENOSPC disables eviction; the scheduler's admission policy
// caps θ-growth), and the acceptance gate: with a permanent cold-read
// fault injected on EVERY read, RunTiGreedy completes with
// degradation_events > 0 and recovered_sets > 0 and a TiResult whose
// computed fields are bit-identical to the fault-free run, on every I/O
// backend at 1/2/8 threads.

#include <algorithm>
#include <memory>
#include <vector>

#include "common/async_io.h"
#include "common/failpoint.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/ti_greedy.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "rrset/parallel_sampler.h"
#include "rrset/rr_sampler.h"
#include "rrset/rr_store.h"
#include "rrset/spill_file.h"
#include "rrset/tiered_store.h"
#include "tests/test_util.h"
#include "topic/tic_model.h"

namespace isa {
namespace {

using core::RmInstance;
using core::RunTiGreedy;
using core::TiOptions;
using core::TiResult;
using graph::Graph;
using rrset::ParallelSampler;
using rrset::ParallelSamplerOptions;
using rrset::RrSampler;
using rrset::RrStore;
using rrset::SpillIoError;
using rrset::SpillOptions;
using rrset::TieredRrStore;
using rrset::TieredStoreOptions;

struct FaultGuard {
  FaultGuard() { FailPoints::Clear(); }
  ~FaultGuard() {
    FailPoints::Clear();
    SetAsyncIoBackendForTest(AsyncIoBackend::kAuto);
  }
};

Graph MakeBaGraph(graph::NodeId n, uint32_t m, uint64_t seed = 9) {
  graph::BarabasiAlbertOptions opts;
  opts.num_nodes = n;
  opts.edges_per_node = m;
  opts.seed = seed;
  auto g = graph::GenerateBarabasiAlbert(opts);
  ISA_CHECK(g.ok());
  return std::move(g).value();
}

constexpr uint64_t kSamplerSeed = 123;

ParallelSampler MakeSampler(const Graph& g, std::span<const double> probs,
                            uint32_t threads) {
  ParallelSamplerOptions opts;
  opts.num_threads = threads;
  opts.min_sets_per_thread = 1;
  return ParallelSampler(g, probs, rrset::DiffusionModel::kIndependentCascade,
                         kSamplerSeed, opts);
}

// The honest resampler: regenerates set `id` exactly as ParallelSampler
// drew it — same per-set substream Rng(HashSeed(seed, id)), same
// single-threaded RrSampler walk.
RrStore::ResampleFn MakeResampler(const Graph& g, std::vector<double> probs) {
  return [&g, probs = std::move(probs)](
             uint64_t seed, uint64_t lo, uint64_t hi,
             std::vector<uint32_t>* sizes,
             std::vector<graph::NodeId>* nodes) {
    RrSampler sampler(g, probs, rrset::DiffusionModel::kIndependentCascade);
    sizes->clear();
    nodes->clear();
    std::vector<graph::NodeId> scratch;
    for (uint64_t id = lo; id < hi; ++id) {
      Rng rng(HashSeed(seed, id));
      sampler.SampleInto(rng, &scratch);
      sizes->push_back(static_cast<uint32_t>(scratch.size()));
      nodes->insert(nodes->end(), scratch.begin(), scratch.end());
    }
  };
}

// A spilled store plus the pre-spill ground truth to compare scans against.
struct SpilledStoreFixture {
  Graph g = MakeBaGraph(2000, 2);
  std::vector<double> probs = std::vector<double>(g.num_edges(), 0.05);
  RrStore store{g.num_nodes()};
  std::vector<std::vector<uint32_t>> expected;
  static constexpr uint64_t kSets = 3000;

  SpilledStoreFixture() {
    MakeSampler(g, probs, 1).SampleAppend(store, kSets);
    expected.resize(g.num_nodes());
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      expected[v] = store.SetsContaining(v);
    }
    SpillOptions so;
    so.chunk_target_bytes = 4u << 10;  // many chunks
    store.SpillPrefix(kSets, so);
  }

  std::vector<uint32_t> Scan(graph::NodeId v) const {
    std::vector<uint32_t> got;
    store.ForEachSpilledSetContaining(
        v, kSets, nullptr, {},
        [&](uint64_t r, std::span<const graph::NodeId>) {
          got.push_back(static_cast<uint32_t>(r));
        });
    // Clustered chunks emit in chunk order, not globally ascending;
    // sort to compare the SET of ids against the ascending ground truth.
    std::sort(got.begin(), got.end());
    return got;
  }
};

TEST(SpillRecoveryTest, PermanentReadFaultHealsBitIdenticalScan) {
  FaultGuard guard;
  SpilledStoreFixture f;
  f.store.SetResampler(MakeResampler(f.g, f.probs));
  // EVERY disk read fails: the fresh re-read rung can never succeed, so
  // every consulted chunk must be rebuilt by re-sampling — and the scan
  // results must not change by a single set id.
  ASSERT_TRUE(FailPoints::Arm("spill.read.eio@every:1").ok());
  for (graph::NodeId v = 0; v < f.g.num_nodes(); v += 13) {
    ASSERT_EQ(f.Scan(v), f.expected[v]) << "node " << v;
  }
  EXPECT_GT(f.store.degradation_events(), 0u);
  EXPECT_GT(f.store.recovered_sets(), 0u);
  const uint64_t recoveries = f.store.degradation_events();

  // Disarm and scan again: recovered chunks are served from the resident
  // cache (never re-read, never re-recovered), still bit-identical.
  FailPoints::Clear();
  for (graph::NodeId v = 0; v < f.g.num_nodes(); v += 13) {
    ASSERT_EQ(f.Scan(v), f.expected[v]) << "node " << v;
  }
  EXPECT_EQ(f.store.degradation_events(), recoveries);
}

TEST(SpillRecoveryTest, TransientReadFaultRetriesWithoutDegradation) {
  FaultGuard guard;
  SpilledStoreFixture f;
  // One EAGAIN on the first read: the bounded-retry layer must absorb it
  // with no degradation and no resampler installed.
  ASSERT_TRUE(FailPoints::Arm("spill.read.eagain@1").ok());
  for (graph::NodeId v = 0; v < f.g.num_nodes(); v += 13) {
    ASSERT_EQ(f.Scan(v), f.expected[v]) << "node " << v;
  }
  EXPECT_GT(f.store.spill_retries(), 0u);
  EXPECT_GT(f.store.spill_retry_successes(), 0u);
  EXPECT_EQ(f.store.degradation_events(), 0u);
  EXPECT_EQ(f.store.recovered_sets(), 0u);
}

TEST(SpillRecoveryTest, NoResamplerMeansFailStop) {
  FaultGuard guard;
  SpilledStoreFixture f;
  // Without provenance-based recovery installed the pre-existing contract
  // holds: a permanent read failure surfaces as SpillIoError.
  ASSERT_TRUE(FailPoints::Arm("spill.read.eio@every:1").ok());
  EXPECT_THROW(f.Scan(0), SpillIoError);
}

TEST(SpillRecoveryTest, CorruptResampleIsRejectedByFooterCheck) {
  FaultGuard guard;
  SpilledStoreFixture f;
  // A resampler that regenerates the wrong content (here: all-empty sets)
  // must be caught by the footer cross-check, not silently served.
  f.store.SetResampler([](uint64_t, uint64_t lo, uint64_t hi,
                          std::vector<uint32_t>* sizes,
                          std::vector<graph::NodeId>* nodes) {
    sizes->assign(static_cast<size_t>(hi - lo), 0);
    nodes->clear();
  });
  ASSERT_TRUE(FailPoints::Arm("spill.read.eio@every:1").ok());
  EXPECT_THROW(f.Scan(0), SpillIoError);
  EXPECT_EQ(f.store.recovered_sets(), 0u);
}

TEST(SpillRecoveryTest, DoubleFaultOnResampleFailsStop) {
  FaultGuard guard;
  SpilledStoreFixture f;
  f.store.SetResampler(MakeResampler(f.g, f.probs));
  // Read fails AND the recovery path fails (disk full while paging the
  // regeneration, say): clean SpillIoError, no partial recovery state.
  ASSERT_TRUE(
      FailPoints::Arm("spill.read.eio@every:1,spill.resample.enospc@1").ok());
  EXPECT_THROW(f.Scan(0), SpillIoError);
  EXPECT_EQ(f.store.recovered_sets(), 0u);
}

TEST(SpillRecoveryTest, AsyncCompleteFaultHealsByRereadWithoutResample) {
  FaultGuard guard;
  SpilledStoreFixture f;
  // No resampler installed: when only the pipelined (async) read path is
  // faulted, the per-chunk fresh re-read rung of the ladder must heal the
  // scan on its own.
  for (const AsyncIoBackend backend :
       {AsyncIoBackend::kSync, AsyncIoBackend::kPoolPread}) {
    SetAsyncIoBackendForTest(backend);
    FailPoints::Clear();
    ASSERT_TRUE(FailPoints::Arm("async.complete.eio@every:1").ok());
    for (graph::NodeId v = 0; v < f.g.num_nodes(); v += 97) {
      ASSERT_EQ(f.Scan(v), f.expected[v]) << "node " << v;
    }
  }
  EXPECT_EQ(f.store.degradation_events(), 0u);
  EXPECT_EQ(f.store.recovered_sets(), 0u);
}

TEST(SpillRecoveryTest, WriteFaultDisablesEvictionAndKeepsStoreConsistent) {
  FaultGuard guard;
  SpilledStoreFixture f;  // reuse the sampling recipe, but spill via a tier
  RrStore store(f.g.num_nodes());
  MakeSampler(f.g, f.probs, 1).SampleAppend(store, f.kSets);
  auto shared = std::shared_ptr<RrStore>(&store, [](RrStore*) {});
  TieredStoreOptions to;
  to.rr_memory_budget_bytes = 1;  // force an eviction attempt
  to.chunk_target_bytes = 4u << 10;
  TieredRrStore tier(shared, to);
  ASSERT_TRUE(FailPoints::Arm("spill.write.enospc@1").ok());
  tier.MaybeSpill(f.kSets);  // must NOT throw
  EXPECT_TRUE(tier.eviction_disabled());
  EXPECT_EQ(tier.degradation_events(), 1u);
  // The mid-eviction failure left the resident state untouched.
  EXPECT_EQ(store.first_resident_set(), 0u);
  for (graph::NodeId v = 0; v < f.g.num_nodes(); v += 131) {
    EXPECT_EQ(store.SetsContaining(v), f.expected[v]) << "node " << v;
  }
  // Further barriers are no-ops, not repeated write attempts.
  tier.MaybeSpill(f.kSets);
  EXPECT_EQ(tier.degradation_events(), 1u);
}

// ------------------------------------------------------------ end to end

struct RecoveryEndToEndFixture {
  Graph g = MakeBaGraph(150, 9);
  std::unique_ptr<RmInstance> instance;

  RecoveryEndToEndFixture() {
    auto topics = topic::MakeUniform(g, 1, 0.8);
    ISA_CHECK(topics.ok());
    std::vector<core::AdvertiserSpec> ads(3);
    ads[0].cpe = 0.2;
    ads[0].budget = 30.0;
    ads[1].cpe = 0.15;
    ads[1].budget = 25.0;
    ads[2].cpe = 0.25;
    ads[2].budget = 35.0;
    for (auto& ad : ads) ad.gamma = topic::TopicDistribution::Uniform(1);
    std::vector<std::vector<double>> incentives(
        3, std::vector<double>(g.num_nodes(), 1.0));
    auto inst = RmInstance::Create(g, topics.value(), std::move(ads),
                                   std::move(incentives));
    ISA_CHECK(inst.ok());
    instance = std::make_unique<RmInstance>(std::move(inst).value());
  }

  TiOptions BudgetedOptions() const {
    TiOptions options;
    options.epsilon = 0.3;
    options.seed = 1234;
    options.theta_cap = 200'000;
    options.num_threads = 2;
    options.rr_memory_budget_bytes = 1;  // spill + rescan constantly
    return options;
  }
};

void ExpectSameComputedResult(const TiResult& a, const TiResult& b) {
  EXPECT_EQ(a.allocation.seed_sets, b.allocation.seed_sets);
  EXPECT_EQ(a.total_revenue, b.total_revenue);  // bitwise
  EXPECT_EQ(a.total_seeding_cost, b.total_seeding_cost);
  EXPECT_EQ(a.total_seeds, b.total_seeds);
  EXPECT_EQ(a.total_theta, b.total_theta);
  EXPECT_EQ(a.total_growth_events, b.total_growth_events);
}

std::vector<AsyncIoBackend> Backends() {
  std::vector<AsyncIoBackend> b = {AsyncIoBackend::kSync,
                                   AsyncIoBackend::kPoolPread};
  if (IoUringAvailable()) b.push_back(AsyncIoBackend::kIoUring);
  return b;
}

// The ISSUE acceptance gate: permanent cold-read faults on every read, at
// 1/2/8 threads on every available I/O backend — the run completes, the
// counters report the recoveries, and the computed TiResult is
// bit-identical to the fault-free run.
TEST(SpillRecoveryEndToEndTest, FaultedRunBitIdenticalAcrossBackendsAndThreads) {
  FaultGuard guard;
  RecoveryEndToEndFixture f;
  auto clean = RunTiGreedy(*f.instance, f.BudgetedOptions());
  ASSERT_TRUE(clean.ok()) << clean.status().message();
  ASSERT_GT(clean.value().total_seeds, 0u);
  ASSERT_EQ(clean.value().total_degradation_events, 0u);

  for (const AsyncIoBackend backend : Backends()) {
    SetAsyncIoBackendForTest(backend);
    for (uint32_t threads : {1u, 2u, 8u}) {
      SCOPED_TRACE(testing::Message()
                   << "backend " << static_cast<int>(backend) << " "
                   << threads << " threads");
      TiOptions options = f.BudgetedOptions();
      options.num_threads = threads;
      FailPoints::Clear();
      ASSERT_TRUE(FailPoints::Arm("spill.read.eio@every:1").ok());
      auto faulted = RunTiGreedy(*f.instance, options);
      FailPoints::Clear();
      ASSERT_TRUE(faulted.ok()) << faulted.status().message();
      ExpectSameComputedResult(clean.value(), faulted.value());
      EXPECT_GT(faulted.value().total_degradation_events, 0u);
      EXPECT_GT(faulted.value().total_recovered_sets, 0u);
    }
  }
}

TEST(SpillRecoveryEndToEndTest, EnospcDegradedRunCompletesWithAdmissionCaps) {
  FaultGuard guard;
  RecoveryEndToEndFixture f;
  auto clean = RunTiGreedy(*f.instance, f.BudgetedOptions());
  ASSERT_TRUE(clean.ok()) << clean.status().message();

  // The very first spill write hits ENOSPC: that store's tier disables
  // eviction at the first barrier and the run finishes resident, with the
  // scheduler vetoing θ-growth while the store sits over its (1-byte)
  // budget. Degraded-mode results may legitimately differ from the clean
  // run — the contract is completion plus honest counters.
  ASSERT_TRUE(FailPoints::Arm("spill.write.enospc@1").ok());
  auto degraded = RunTiGreedy(*f.instance, f.BudgetedOptions());
  FailPoints::Clear();
  ASSERT_TRUE(degraded.ok()) << degraded.status().message();
  EXPECT_GT(degraded.value().total_seeds, 0u);
  EXPECT_GT(degraded.value().total_degradation_events, 0u);
  if (clean.value().total_growth_events > 0) {
    EXPECT_GT(degraded.value().total_growth_admission_caps, 0u);
  }
}

TEST(SpillRecoveryEndToEndTest, CombinedReadAndWriteFaultsStillComplete) {
  FaultGuard guard;
  RecoveryEndToEndFixture f;
  // Reads keep failing permanently while one late spill write also dies:
  // read-side recovery and write-side degradation compose.
  ASSERT_TRUE(
      FailPoints::Arm("spill.read.eio@every:1,spill.write.enospc@4").ok());
  auto run = RunTiGreedy(*f.instance, f.BudgetedOptions());
  FailPoints::Clear();
  ASSERT_TRUE(run.ok()) << run.status().message();
  EXPECT_GT(run.value().total_seeds, 0u);
  EXPECT_GT(run.value().total_degradation_events, 0u);
}

TEST(SpillRecoveryEndToEndTest, PoolAllocFaultSurfacesAsResourceExhausted) {
  FaultGuard guard;
  RecoveryEndToEndFixture f;
  ASSERT_TRUE(FailPoints::Arm("pool.alloc.throw@1").ok());
  auto run = RunTiGreedy(*f.instance, f.BudgetedOptions());
  FailPoints::Clear();
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kResourceExhausted);
}

TEST(SpillRecoveryEndToEndTest, SamplerAllocFaultSurfacesAsResourceExhausted) {
  FaultGuard guard;
  RecoveryEndToEndFixture f;
  // The sampler.alloc site guards the async-growth side buffers, so force
  // the async path. If the run never grew (site never hit), completing
  // cleanly is the correct outcome.
  TiOptions options = f.BudgetedOptions();
  options.async_growth = true;
  ASSERT_TRUE(FailPoints::Arm("sampler.alloc.throw@1").ok());
  auto run = RunTiGreedy(*f.instance, options);
  const uint64_t fires = FailPoints::TotalFires();
  FailPoints::Clear();
  if (fires > 0) {
    ASSERT_FALSE(run.ok());
    EXPECT_EQ(run.status().code(), StatusCode::kResourceExhausted);
  } else {
    EXPECT_TRUE(run.ok());
  }
}

}  // namespace
}  // namespace isa
