#include <gtest/gtest.h>

#include "core/problem.h"
#include "core/spread_oracle.h"
#include "tests/test_util.h"

namespace isa::core {
namespace {

AdvertiserSpec Ad(double cpe, double budget) {
  AdvertiserSpec a;
  a.cpe = cpe;
  a.budget = budget;
  a.gamma = topic::TopicDistribution::Uniform(1);
  return a;
}

TEST(RmInstanceTest, CreateAndAccessors) {
  auto owned = test::MakeInstance(
      3, {{0, 1}, {1, 2}}, 0.5, {Ad(1.5, 10.0), Ad(2.0, 20.0)},
      {{1.0, 2.0, 3.0}, {0.5, 0.5, 0.5}});
  const RmInstance& inst = *owned.instance;
  EXPECT_EQ(inst.num_ads(), 2u);
  EXPECT_EQ(inst.num_nodes(), 3u);
  EXPECT_DOUBLE_EQ(inst.cpe(0), 1.5);
  EXPECT_DOUBLE_EQ(inst.budget(1), 20.0);
  EXPECT_DOUBLE_EQ(inst.incentive(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(inst.max_incentive(0), 3.0);
  EXPECT_DOUBLE_EQ(inst.max_incentive(1), 0.5);
  EXPECT_EQ(inst.ad_probs(0).size(), 2u);
  EXPECT_DOUBLE_EQ(inst.ad_probs(0)[0], 0.5);
  EXPECT_GT(inst.ProbabilityMemoryBytes(), 0u);
}

TEST(RmInstanceTest, ValidationErrors) {
  auto g = test::MustGraph(2, {{0, 1}});
  auto topics = topic::MakeUniform(g, 1, 0.5).value();
  auto mk = [&](double cpe, double budget,
                std::vector<std::vector<double>> inc) {
    AdvertiserSpec a = Ad(cpe, budget);
    return RmInstance::Create(g, topics, {a}, std::move(inc));
  };
  EXPECT_FALSE(mk(0.0, 5.0, {{1, 1}}).ok());        // cpe <= 0
  EXPECT_FALSE(mk(1.0, 0.0, {{1, 1}}).ok());        // budget <= 0
  EXPECT_FALSE(mk(1.0, 5.0, {{1}}).ok());           // wrong incentive size
  EXPECT_FALSE(mk(1.0, 5.0, {{1, -2}}).ok());       // negative incentive
  EXPECT_FALSE(mk(1.0, 5.0, {}).ok());              // missing schedule
  EXPECT_FALSE(RmInstance::Create(g, topics, {}, {}).ok());  // no ads
}

TEST(AllocationTest, TotalSeedsAndDisjointness) {
  Allocation a;
  a.seed_sets = {{0, 1}, {2}};
  EXPECT_EQ(a.TotalSeeds(), 3u);
  EXPECT_TRUE(a.IsDisjoint(5));

  Allocation overlap;
  overlap.seed_sets = {{0, 1}, {1}};
  EXPECT_FALSE(overlap.IsDisjoint(5));

  Allocation repeat;
  repeat.seed_sets = {{2, 2}};
  EXPECT_FALSE(repeat.IsDisjoint(5));

  Allocation out_of_range;
  out_of_range.seed_sets = {{9}};
  EXPECT_FALSE(out_of_range.IsDisjoint(5));
}

TEST(EvaluateAllocationTest, AccountingOnDeterministicChain) {
  // Chain 0->1->2, p = 1, cpe = 2, incentives 1 each, budget 10.
  auto owned = test::MakeInstance(3, {{0, 1}, {1, 2}}, 1.0, {Ad(2.0, 10.0)},
                                  {{1.0, 1.0, 1.0}});
  auto oracle = ExactSpreadOracle::Create(*owned.instance);
  ASSERT_TRUE(oracle.ok());
  Allocation alloc;
  alloc.seed_sets = {{0}};
  auto eval = EvaluateAllocation(*owned.instance, alloc, *oracle.value());
  EXPECT_DOUBLE_EQ(eval.spread[0], 3.0);
  EXPECT_DOUBLE_EQ(eval.revenue[0], 6.0);
  EXPECT_DOUBLE_EQ(eval.seeding_cost[0], 1.0);
  EXPECT_DOUBLE_EQ(eval.payment[0], 7.0);
  EXPECT_DOUBLE_EQ(eval.total_revenue, 6.0);
  EXPECT_TRUE(eval.feasible);
}

TEST(EvaluateAllocationTest, FlagsBudgetViolation) {
  auto owned = test::MakeInstance(3, {{0, 1}, {1, 2}}, 1.0, {Ad(2.0, 5.0)},
                                  {{1.0, 1.0, 1.0}});
  auto oracle = ExactSpreadOracle::Create(*owned.instance);
  ASSERT_TRUE(oracle.ok());
  Allocation alloc;
  alloc.seed_sets = {{0}};  // payment 7 > budget 5
  auto eval = EvaluateAllocation(*owned.instance, alloc, *oracle.value());
  EXPECT_FALSE(eval.feasible);
}

TEST(EvaluateAllocationTest, FlagsOverlap) {
  auto owned = test::MakeInstance(
      3, {{0, 1}, {1, 2}}, 1.0, {Ad(1.0, 100.0), Ad(1.0, 100.0)},
      {{0.1, 0.1, 0.1}, {0.1, 0.1, 0.1}});
  auto oracle = ExactSpreadOracle::Create(*owned.instance);
  ASSERT_TRUE(oracle.ok());
  Allocation alloc;
  alloc.seed_sets = {{0}, {0}};
  auto eval = EvaluateAllocation(*owned.instance, alloc, *oracle.value());
  EXPECT_FALSE(eval.feasible);
}

TEST(SpreadOracleTest, ExactRejectsLargeGraph) {
  std::vector<graph::Edge> edges;
  for (graph::NodeId u = 0; u < 30; ++u) edges.push_back({u, u + 1});
  auto owned = test::MakeInstance(31, std::move(edges), 0.5, {Ad(1.0, 5.0)},
                                  {std::vector<double>(31, 1.0)});
  EXPECT_FALSE(ExactSpreadOracle::Create(*owned.instance).ok());
}

TEST(SpreadOracleTest, McMatchesExactOnDiamond) {
  auto owned = test::MakeInstance(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}}, 0.5,
                                  {Ad(1.0, 100.0)},
                                  {std::vector<double>(4, 1.0)});
  auto exact = ExactSpreadOracle::Create(*owned.instance);
  ASSERT_TRUE(exact.ok());
  McSpreadOracle mc(*owned.instance, 200'000, 31);
  const graph::NodeId seeds[1] = {0};
  EXPECT_NEAR(mc.Spread(0, seeds), exact.value()->Spread(0, seeds), 0.02);
  EXPECT_EQ(mc.query_count(), 1u);
}

TEST(SpreadOracleTest, McDeterministicPerAdQuery) {
  auto owned = test::MakeInstance(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}}, 0.5,
                                  {Ad(1.0, 100.0)},
                                  {std::vector<double>(4, 1.0)});
  McSpreadOracle a(*owned.instance, 1000, 7);
  McSpreadOracle b(*owned.instance, 1000, 7);
  const graph::NodeId seeds[2] = {0, 3};
  EXPECT_DOUBLE_EQ(a.Spread(0, seeds), b.Spread(0, seeds));
}

}  // namespace
}  // namespace isa::core
