// Tests for shared RR stores: multiple advertiser views over one physical
// sample (TiOptions::share_samples — our extension answering the paper's
// open problem (i) on TI-CSRM memory).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/ti_greedy.h"
#include "graph/generators.h"
#include "rrset/rr_collection.h"
#include "rrset/rr_sampler.h"
#include "tests/test_util.h"
#include "topic/tic_model.h"

namespace isa {
namespace {

TEST(SharedStoreTest, ViewsAdoptIndependentPrefixes) {
  auto g = test::MustGraph(3, {{0, 1}, {1, 2}});
  std::vector<double> probs(g.num_edges(), 1.0);
  rrset::RrSampler sampler(g, probs);
  auto store = std::make_shared<rrset::RrStore>(3);
  rrset::RrCollection view_a(store), view_b(store);
  Rng rng(5);
  view_a.AddSets(sampler, 100, rng, {});
  view_b.AddSets(sampler, 40, rng, {});
  EXPECT_EQ(view_a.total_sets(), 100u);
  EXPECT_EQ(view_b.total_sets(), 40u);
  // Store holds the max prefix; view B reuses A's first 40 sets.
  EXPECT_EQ(store->num_sets(), 100u);
  // With p = 1 node 0 appears in every set.
  EXPECT_EQ(view_a.CoverageOf(0), 100u);
  EXPECT_EQ(view_b.CoverageOf(0), 40u);
}

TEST(SharedStoreTest, RemovalIsPerView) {
  auto g = test::MustGraph(3, {{0, 1}, {1, 2}});
  std::vector<double> probs(g.num_edges(), 1.0);
  rrset::RrSampler sampler(g, probs);
  auto store = std::make_shared<rrset::RrStore>(3);
  rrset::RrCollection view_a(store), view_b(store);
  Rng rng(6);
  view_a.AddSets(sampler, 50, rng, {});
  view_b.AddSets(sampler, 50, rng, {});
  view_a.RemoveCoveredBy(0);
  EXPECT_DOUBLE_EQ(view_a.covered_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(view_b.covered_fraction(), 0.0);  // untouched
  EXPECT_EQ(view_b.CoverageOf(0), 50u);
}

TEST(SharedStoreTest, RemovalStopsAtAdoptedPrefix) {
  auto g = test::MustGraph(3, {{0, 1}, {1, 2}});
  std::vector<double> probs(g.num_edges(), 1.0);
  rrset::RrSampler sampler(g, probs);
  auto store = std::make_shared<rrset::RrStore>(3);
  rrset::RrCollection big(store), small(store);
  Rng rng(7);
  big.AddSets(sampler, 200, rng, {});
  small.AddSets(sampler, 30, rng, {});
  EXPECT_EQ(small.RemoveCoveredBy(0), 30u);  // not 200
}

TEST(SharedStoreTest, SharedVsPrivateSemanticsMatch) {
  // The same adopted prefix must produce identical coverage state whether
  // the store is private or shared.
  auto g = test::MustGraph(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  std::vector<double> probs(g.num_edges(), 0.5);
  rrset::RrSampler s1(g, probs), s2(g, probs);
  Rng r1(9), r2(9);
  rrset::RrCollection priv(g.num_nodes());
  priv.AddSets(s1, 500, r1, {});
  auto store = std::make_shared<rrset::RrStore>(g.num_nodes());
  rrset::RrCollection shared(store);
  shared.AddSets(s2, 500, r2, {});
  for (graph::NodeId v = 0; v < 4; ++v) {
    EXPECT_EQ(priv.CoverageOf(v), shared.CoverageOf(v)) << "node " << v;
  }
  EXPECT_EQ(priv.RemoveCoveredBy(0), shared.RemoveCoveredBy(0));
  EXPECT_DOUBLE_EQ(priv.covered_fraction(), shared.covered_fraction());
}

TEST(SharedStoreTest, ViewMemoryExcludesStore) {
  auto g = test::MustGraph(3, {{0, 1}, {1, 2}});
  std::vector<double> probs(g.num_edges(), 1.0);
  rrset::RrSampler sampler(g, probs);
  auto store = std::make_shared<rrset::RrStore>(3);
  rrset::RrCollection view(store);
  Rng rng(8);
  view.AddSets(sampler, 100, rng, {});
  EXPECT_LT(view.MemoryBytes(/*include_store=*/false),
            view.MemoryBytes(/*include_store=*/true));
  EXPECT_GT(store->MemoryBytes(), 0u);
}

// --- Driver-level sharing ---

struct Fixture {
  std::unique_ptr<graph::Graph> graph;
  std::unique_ptr<topic::TopicEdgeProbabilities> topics;
  std::unique_ptr<core::RmInstance> instance;
};

Fixture MakePureCompetition(uint32_t h) {
  Fixture f;
  auto g = graph::GenerateBarabasiAlbert(
      {.num_nodes = 300, .edges_per_node = 3, .seed = 21});
  ISA_CHECK(g.ok());
  f.graph = std::make_unique<graph::Graph>(std::move(g).value());
  auto topics = topic::MakeWeightedCascade(*f.graph, 1);
  ISA_CHECK(topics.ok());
  f.topics = std::make_unique<topic::TopicEdgeProbabilities>(
      std::move(topics).value());
  std::vector<double> cost(f.graph->num_nodes());
  for (graph::NodeId u = 0; u < f.graph->num_nodes(); ++u) {
    cost[u] = 0.2 * (1 + f.graph->OutDegree(u));
  }
  core::AdvertiserSpec ad;
  ad.cpe = 1.0;
  ad.budget = 30.0;
  ad.gamma = topic::TopicDistribution::Uniform(1);
  // All ads share the single topic: one shared store suffices.
  auto inst = core::RmInstance::Create(
      *f.graph, *f.topics, std::vector<core::AdvertiserSpec>(h, ad),
      std::vector<std::vector<double>>(h, cost));
  ISA_CHECK(inst.ok());
  f.instance = std::make_unique<core::RmInstance>(std::move(inst).value());
  return f;
}

TEST(SharedStoreTest, SharingShrinksMemoryOnPureCompetition) {
  auto f = MakePureCompetition(6);
  core::TiOptions opt;
  opt.epsilon = 0.3;
  opt.theta_cap = 20'000;
  opt.seed = 11;
  auto solo = core::RunTiCsrm(*f.instance, opt);
  opt.share_samples = true;
  auto shared = core::RunTiCsrm(*f.instance, opt);
  ASSERT_TRUE(solo.ok() && shared.ok());
  // Six identical ads -> one store instead of six.
  EXPECT_LT(shared.value().total_rr_memory_bytes,
            solo.value().total_rr_memory_bytes / 2);
  // Allocations remain feasible and disjoint.
  EXPECT_TRUE(
      shared.value().allocation.IsDisjoint(f.instance->num_nodes()));
  for (uint32_t j = 0; j < 6; ++j) {
    EXPECT_LE(shared.value().ad_stats[j].payment, 30.0 + 1e-6);
  }
  // Same estimator family: revenue in the same ballpark.
  EXPECT_NEAR(shared.value().total_revenue, solo.value().total_revenue,
              0.3 * std::max(1.0, solo.value().total_revenue));
}

TEST(SharedStoreTest, SharingDeterministic) {
  auto f = MakePureCompetition(4);
  core::TiOptions opt;
  opt.epsilon = 0.3;
  opt.theta_cap = 10'000;
  opt.seed = 13;
  opt.share_samples = true;
  auto a = core::RunTiCsrm(*f.instance, opt);
  auto b = core::RunTiCsrm(*f.instance, opt);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().allocation.seed_sets, b.value().allocation.seed_sets);
}

TEST(SharedStoreTest, DistinctProbabilitiesGetDistinctStores) {
  // Two ads with different topic mixes must NOT share a store; verify via
  // memory: sharing enabled but nothing shareable -> same footprint class
  // as solo.
  auto g = graph::GenerateBarabasiAlbert(
      {.num_nodes = 200, .edges_per_node = 3, .seed = 22});
  ASSERT_TRUE(g.ok());
  auto topics = topic::MakeDegreeScaledRandom(g.value(), 2, 5).value();
  std::vector<double> cost(g.value().num_nodes(), 1.0);
  std::vector<core::AdvertiserSpec> ads(2);
  ads[0].cpe = ads[1].cpe = 1.0;
  ads[0].budget = ads[1].budget = 20.0;
  ads[0].gamma = topic::TopicDistribution::Concentrated(2, 0, 0.91).value();
  ads[1].gamma = topic::TopicDistribution::Concentrated(2, 1, 0.91).value();
  auto inst =
      core::RmInstance::Create(g.value(), topics, ads, {cost, cost}).value();
  core::TiOptions opt;
  opt.epsilon = 0.3;
  opt.theta_cap = 5'000;
  opt.share_samples = true;
  auto res = core::RunTiCsrm(inst, opt);
  ASSERT_TRUE(res.ok());
  // Both ads carry non-trivial store bytes (two separate stores counted).
  EXPECT_GT(res.value().ad_stats[0].rr_memory_bytes, 0u);
  EXPECT_GT(res.value().ad_stats[1].rr_memory_bytes,
            res.value().ad_stats[0].rr_memory_bytes / 100);
}

}  // namespace
}  // namespace isa
