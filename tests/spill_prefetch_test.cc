// The cold-tier read path added on top of the out-of-core RR store:
// exclusive spill-file creation (no truncation/symlink following), the
// per-chunk Bloom filters and their scan counters, the SpillChunkCursor
// prefetch pipeline across every I/O backend (io_uring / pool pread /
// sync), fault injection via the FailPoints registry (truncation/EOF is a
// permanent unit-level SpillIoError; a permanent cold-read fault mid-run
// is RECOVERED by re-sampling, a spill-write ENOSPC degrades to resident
// completion, and only an unrecoverable double fault still surfaces as
// Status::ResourceExhausted), and the end-to-end invariant: a fixed seed
// yields a bit-identical TiResult with the prefetch on or off, on any
// backend, at 1/2/8 threads. Recovery bit-identity and the failure
// counters are covered in depth by spill_recovery_test.cc.

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/async_io.h"
#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "core/ti_greedy.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "rrset/parallel_sampler.h"
#include "rrset/rr_collection.h"
#include "rrset/spill_file.h"
#include "tests/test_util.h"
#include "topic/tic_model.h"

namespace isa {
namespace {

using core::RmInstance;
using core::RunTiGreedy;
using core::TiOptions;
using core::TiResult;
using graph::Graph;
using rrset::ParallelSampler;
using rrset::ParallelSamplerOptions;
using rrset::RrCollection;
using rrset::RrStore;
using rrset::SpillChunkCursor;
using rrset::SpillFile;
using rrset::SpillIoError;
using rrset::SpillOptions;

Graph MakeBaGraph(graph::NodeId n, uint32_t m, uint64_t seed = 9) {
  graph::BarabasiAlbertOptions opts;
  opts.num_nodes = n;
  opts.edges_per_node = m;
  opts.seed = seed;
  auto g = graph::GenerateBarabasiAlbert(opts);
  ISA_CHECK(g.ok());
  return std::move(g).value();
}

ParallelSampler MakeSampler(const Graph& g, std::span<const double> probs,
                            uint32_t threads, uint64_t seed = 123) {
  ParallelSamplerOptions opts;
  opts.num_threads = threads;
  opts.min_sets_per_thread = 1;
  return ParallelSampler(g, probs, rrset::DiffusionModel::kIndependentCascade,
                         seed, opts);
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::lstat(path.c_str(), &st) == 0;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Restores the process-wide backend override (and any armed failpoints)
// no matter how a test exits.
struct IoStateGuard {
  ~IoStateGuard() {
    SetAsyncIoBackendForTest(AsyncIoBackend::kAuto);
    FailPoints::Clear();
  }
};

// The backends every test sweeps: the two portable ones always, io_uring
// when the kernel grants it.
std::vector<AsyncIoBackend> Backends() {
  std::vector<AsyncIoBackend> b = {AsyncIoBackend::kSync,
                                   AsyncIoBackend::kPoolPread};
  if (IoUringAvailable()) b.push_back(AsyncIoBackend::kIoUring);
  return b;
}

const char* BackendName(AsyncIoBackend b) {
  switch (b) {
    case AsyncIoBackend::kIoUring:
      return "io_uring";
    case AsyncIoBackend::kPoolPread:
      return "pool-pread";
    case AsyncIoBackend::kSync:
      return "sync";
    default:
      return "auto";
  }
}

// ------------------------------------------------ exclusive file creation

TEST(SpillHardeningTest, ExclusiveCreateNeverTruncatesExistingFile) {
  const std::string path = rrset::MakeSpillPath();
  {
    std::ofstream out(path, std::ios::binary);
    out << "precious bytes";
  }
  std::string actual_path;
  {
    SpillFile file(path);
    // The constructor must step aside, not truncate: the pre-existing
    // file keeps its bytes and the spill lands under a fresh suffix.
    EXPECT_NE(file.path(), path);
    actual_path = file.path();
    EXPECT_TRUE(FileExists(actual_path));
    const std::vector<uint32_t> sizes = {2};
    const std::vector<graph::NodeId> nodes = {4, 5};
    file.AppendChunk(0, 1, sizes, nodes);
    std::vector<uint32_t> rs;
    std::vector<graph::NodeId> rn;
    file.ReadChunk(0, &rs, &rn);
    EXPECT_EQ(rn, nodes);
  }
  // The destructor removes only its own file.
  EXPECT_FALSE(FileExists(actual_path));
  EXPECT_EQ(ReadFile(path), "precious bytes");
  ::unlink(path.c_str());
}

TEST(SpillHardeningTest, SymlinkAtSpillPathIsNotFollowed) {
  const std::string target = rrset::MakeSpillPath();
  {
    std::ofstream out(target, std::ios::binary);
    out << "victim contents";
  }
  const std::string link = rrset::MakeSpillPath();
  ASSERT_EQ(::symlink(target.c_str(), link.c_str()), 0);
  {
    SpillFile file(link);
    EXPECT_NE(file.path(), link);
    EXPECT_NE(file.path(), target);
    const std::vector<uint32_t> sizes = {1};
    const std::vector<graph::NodeId> nodes = {7};
    file.AppendChunk(0, 1, sizes, nodes);
  }
  // Neither the symlink nor its target was written through or removed.
  EXPECT_TRUE(FileExists(link));
  EXPECT_EQ(ReadFile(target), "victim contents");
  ::unlink(link.c_str());
  ::unlink(target.c_str());
}

// ------------------------------------------------------ per-chunk Blooms

TEST(SpillBloomTest, NoFalseNegativesAndSaneFalsePositiveRate) {
  SpillFile file(rrset::MakeSpillPath(), /*bloom_bits_per_key=*/8);
  // One chunk holding every EVEN id below 4000 (2000 distinct members,
  // duplicates included to check they do not inflate the filter).
  std::vector<graph::NodeId> nodes;
  std::vector<uint32_t> sizes;
  for (graph::NodeId v = 0; v < 4000; v += 2) {
    nodes.push_back(v);
    nodes.push_back(v);  // duplicate
  }
  sizes.push_back(static_cast<uint32_t>(nodes.size()));
  file.AppendChunk(0, 1, sizes, nodes);

  // Bloom filters never produce false negatives.
  for (graph::NodeId v = 0; v < 4000; v += 2) {
    ASSERT_TRUE(file.ChunkMightContain(0, v)) << "member " << v;
  }
  // Absent ODD ids inside the envelope: only Bloom false positives pass.
  // 8 bits per distinct key with k = 3 gives ~3% FPR; assert a generous
  // ceiling so the test is not seed-sensitive.
  uint32_t false_positives = 0;
  uint32_t probes = 0;
  for (graph::NodeId v = 1; v < 4000; v += 2) {
    ++probes;
    if (file.ChunkMightContain(0, v)) ++false_positives;
  }
  EXPECT_LT(static_cast<double>(false_positives) / probes, 0.10)
      << false_positives << "/" << probes;
  // Outside the node envelope the answer is definitive regardless.
  EXPECT_FALSE(file.ChunkMightContain(0, 5000));

  // bloom_bits_per_key = 0 disables the filter: everything inside the
  // envelope might be present.
  SpillFile plain(rrset::MakeSpillPath(), 0);
  plain.AppendChunk(0, 1, sizes, nodes);
  EXPECT_TRUE(plain.ChunkMightContain(0, 1));
  EXPECT_FALSE(plain.ChunkMightContain(0, 5000));
  EXPECT_LT(plain.MetadataBytes(), file.MetadataBytes());
}

// ------------------------------------------------- SpillChunkCursor

TEST(SpillPrefetchTest, CursorMatchesReadChunkAcrossBackends) {
  IoStateGuard guard;
  SpillFile file(rrset::MakeSpillPath());
  // Five chunks of deterministic synthetic sets with varying shapes.
  std::vector<std::vector<uint32_t>> all_sizes;
  std::vector<std::vector<graph::NodeId>> all_nodes;
  uint64_t next_set = 0;
  for (uint32_t c = 0; c < 5; ++c) {
    std::vector<uint32_t> sizes;
    std::vector<graph::NodeId> nodes;
    for (uint32_t s = 0; s < 3 + c; ++s) {
      const uint32_t card = 1 + (s * 7 + c) % 5;
      sizes.push_back(card);
      for (uint32_t i = 0; i < card; ++i) {
        nodes.push_back(static_cast<graph::NodeId>(c * 1000 + s * 10 + i));
      }
    }
    file.AppendChunk(next_set, next_set + sizes.size(), sizes, nodes);
    next_set += sizes.size();
    all_sizes.push_back(std::move(sizes));
    all_nodes.push_back(std::move(nodes));
  }

  ThreadPool pool(4);
  for (const AsyncIoBackend backend : Backends()) {
    SCOPED_TRACE(BackendName(backend));
    SetAsyncIoBackendForTest(backend);
    // Full walk and a filtered (skipping) walk both deliver exactly the
    // chunks asked for, in order, bytes intact.
    for (const std::vector<uint32_t>& want :
         {std::vector<uint32_t>{0, 1, 2, 3, 4}, std::vector<uint32_t>{1, 3},
          std::vector<uint32_t>{4}, std::vector<uint32_t>{}}) {
      SpillChunkCursor cursor(file, want, &pool);
      size_t k = 0;
      while (cursor.Next()) {
        ASSERT_LT(k, want.size());
        EXPECT_EQ(cursor.chunk(), want[k]);
        const auto sizes = cursor.sizes();
        const auto nodes = cursor.nodes();
        EXPECT_TRUE(std::equal(sizes.begin(), sizes.end(),
                               all_sizes[want[k]].begin(),
                               all_sizes[want[k]].end()));
        EXPECT_TRUE(std::equal(nodes.begin(), nodes.end(),
                               all_nodes[want[k]].begin(),
                               all_nodes[want[k]].end()));
        ++k;
      }
      EXPECT_EQ(k, want.size());
    }
    // Abandoning a cursor mid-walk (prefetch in flight) must be safe: the
    // destructor drains the outstanding read.
    {
      SpillChunkCursor cursor(file, {0, 1, 2, 3, 4}, &pool);
      ASSERT_TRUE(cursor.Next());
    }
  }
}

// ------------------------------------------------- scan counters + skips

TEST(SpillPrefetchTest, ScanCountersPartitionConsideredChunks) {
  // A graph much larger than a chunk's distinct-member reach, so most
  // chunks genuinely lack most nodes and the Bloom filters have real
  // skips to find.
  const Graph g = MakeBaGraph(2000, 2);
  const std::vector<double> probs(g.num_edges(), 0.05);
  RrStore store(g.num_nodes());
  MakeSampler(g, probs, 1).SampleAppend(store, 3000);
  std::vector<std::vector<uint32_t>> expected(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    expected[v] = store.SetsContaining(v);
  }
  SpillOptions so;
  so.chunk_target_bytes = 4u << 10;
  store.SpillPrefix(3000, so);
  const uint64_t num_chunks = store.SpillChunks();
  ASSERT_GT(num_chunks, 4u);

  uint64_t scans = 0;
  for (graph::NodeId v = 0; v < g.num_nodes(); v += 13) {
    const uint64_t reloads0 = store.scan_reloads();
    const uint64_t read0 = store.chunks_read();
    const uint64_t skip0 = store.chunks_skipped();
    std::vector<uint32_t> got;
    store.ForEachSpilledSetContaining(
        v, 3000, nullptr, {},
        [&](uint64_t r, std::span<const graph::NodeId>) {
          got.push_back(static_cast<uint32_t>(r));
        });
    // Clustered chunks emit in chunk order, not globally ascending;
    // the SET of emitted ids must still match exactly.
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected[v]) << "node " << v;
    ++scans;
    // Every spilled chunk overlaps [0, 3000): each scan considers all of
    // them, and read/skipped partition exactly that set.
    EXPECT_EQ(store.scan_reloads(), reloads0 + 1);
    EXPECT_EQ((store.chunks_read() - read0) + (store.chunks_skipped() - skip0),
              num_chunks);
  }
  EXPECT_EQ(store.scan_reloads(), scans);
  // The filters must be earning skips on this fixture (most nodes are
  // absent from most chunks), while every emitted hit above proves reads
  // were never skipped wrongly.
  EXPECT_GT(store.chunks_skipped(), 0u);
  EXPECT_GT(store.chunks_read(), 0u);
}

// ------------------------------------------------- prefetch = no-op state

TEST(SpillPrefetchTest, PrefetchedRemoveCoveredByMatchesPlain) {
  const Graph g = MakeBaGraph(300, 3);
  const std::vector<double> probs(g.num_edges(), 0.1);
  ThreadPool pool(4);

  RrCollection plain(g.num_nodes());
  RrCollection prefetched(g.num_nodes());
  {
    ParallelSampler s1 = MakeSampler(g, probs, 1);
    plain.AddSets(s1, 3000, {});
  }
  {
    ParallelSampler s2 = MakeSampler(g, probs, 1);
    prefetched.AddSets(s2, 3000, {});
  }
  SpillOptions so;
  so.chunk_target_bytes = 1u << 13;
  plain.store()->SpillPrefix(1500, so);
  prefetched.store()->SpillPrefix(1500, so);

  std::vector<graph::NodeId> touched_a, touched_b;
  uint32_t step = 0;
  for (const graph::NodeId seed : {7u, 42u, 199u, 42u, 0u, 250u}) {
    // Exercise all three prefetch shapes: exact prefetch, stale prefetch
    // for a different node (must be discarded), and no prefetch.
    if (step % 3 == 0) {
      prefetched.PrefetchRemoveCoveredBy(seed, &pool);
    } else if (step % 3 == 1) {
      prefetched.PrefetchRemoveCoveredBy(seed + 1, &pool);
    }
    ++step;
    const uint32_t removed_a = plain.RemoveCoveredBy(seed, &touched_a);
    const uint32_t removed_b =
        prefetched.RemoveCoveredBy(seed, &touched_b, &pool);
    ASSERT_EQ(removed_a, removed_b) << "seed " << seed;
    ASSERT_EQ(touched_a, touched_b) << "seed " << seed;
    ASSERT_EQ(plain.covered_sets(), prefetched.covered_sets());
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_EQ(plain.CoverageOf(v), prefetched.CoverageOf(v))
          << "seed " << seed << " node " << v;
    }
  }
}

// --------------------------------------------------------- fault injection

TEST(SpillFaultTest, TruncatedFileSurfacesEofAcrossBackends) {
  IoStateGuard guard;
  ThreadPool pool(2);
  for (const AsyncIoBackend backend : Backends()) {
    SCOPED_TRACE(BackendName(backend));
    SetAsyncIoBackendForTest(backend);
    SpillFile file(rrset::MakeSpillPath());
    const std::vector<uint32_t> sizes = {2, 1};
    const std::vector<graph::NodeId> nodes = {1, 2, 3};
    file.AppendChunk(0, 2, sizes, nodes);
    file.AppendChunk(2, 4, sizes, nodes);
    // Cut into the SECOND chunk's payload: chunk 0 still reads fine, the
    // pipelined read of chunk 1 comes up short and must surface as
    // SpillIoError (unexpected EOF), not as silent truncation.
    ASSERT_EQ(::truncate(file.path().c_str(),
                         static_cast<off_t>(file.chunks()[1].file_offset + 4)),
              0);
    SpillChunkCursor cursor(file, {0, 1}, &pool);
    ASSERT_TRUE(cursor.Next());
    EXPECT_EQ(cursor.chunk(), 0u);
    EXPECT_THROW(cursor.Next(), SpillIoError);
    // The non-pipelined read path reports the same condition.
    std::vector<uint32_t> rs;
    std::vector<graph::NodeId> rn;
    EXPECT_THROW(file.ReadChunk(1, &rs, &rn), SpillIoError);
  }
}

TEST(SpillFaultTest, InjectedReadErrorSurfacesAsSpillIoError) {
  IoStateGuard guard;
  ThreadPool pool(2);
  for (const AsyncIoBackend backend : Backends()) {
    SCOPED_TRACE(BackendName(backend));
    SetAsyncIoBackendForTest(backend);
    SpillFile file(rrset::MakeSpillPath());
    const std::vector<uint32_t> sizes = {1};
    const std::vector<graph::NodeId> nodes = {9};
    file.AppendChunk(0, 1, sizes, nodes);
    // Raw SpillFile/cursor reads have no re-sampling fallback: a
    // permanent EIO (injected on every read so the retry path cannot
    // sidestep it) must surface as SpillIoError.
    ASSERT_TRUE(FailPoints::Arm("spill.read.eio@every:1").ok());
    SpillChunkCursor cursor(file, {0}, &pool);
    EXPECT_THROW(cursor.Next(), SpillIoError);
    FailPoints::Clear();
  }
}

// The driver contract: permanent cold-tier faults mid-run DEGRADE instead
// of aborting — lost chunks are re-sampled from their recorded substream
// seeds (read side), a failed spill write disables eviction and the run
// finishes resident (write side). Only an unrecoverable double fault
// still surfaces as Status::ResourceExhausted, never as a crash or a
// silently wrong result.
struct SpillFaultEndToEndFixture {
  Graph g = MakeBaGraph(150, 9);
  std::unique_ptr<RmInstance> instance;

  SpillFaultEndToEndFixture() {
    auto topics = topic::MakeUniform(g, 1, 0.8);
    ISA_CHECK(topics.ok());
    std::vector<core::AdvertiserSpec> ads(3);
    ads[0].cpe = 0.2;
    ads[0].budget = 30.0;
    ads[1].cpe = 0.15;
    ads[1].budget = 25.0;
    ads[2].cpe = 0.25;
    ads[2].budget = 35.0;
    for (auto& ad : ads) ad.gamma = topic::TopicDistribution::Uniform(1);
    std::vector<std::vector<double>> incentives(
        3, std::vector<double>(g.num_nodes(), 1.0));
    auto inst = RmInstance::Create(g, topics.value(), std::move(ads),
                                   std::move(incentives));
    ISA_CHECK(inst.ok());
    instance = std::make_unique<RmInstance>(std::move(inst).value());
  }

  TiOptions BudgetedOptions() const {
    TiOptions options;
    options.epsilon = 0.3;
    options.seed = 1234;
    options.theta_cap = 200'000;
    options.num_threads = 2;
    options.rr_memory_budget_bytes = 1;  // spill + rescan constantly
    return options;
  }
};

TEST(SpillFaultTest, ReadErrorIsRecoveredByResampling) {
  IoStateGuard guard;
  SpillFaultEndToEndFixture f;
  // EVERY cold read fails with EIO — the per-chunk re-read fallback can
  // never sidestep the fault, so every consulted chunk is rebuilt by
  // re-sampling. The run must complete and say so in the counters
  // (bit-identity with the fault-free run is spill_recovery_test.cc's
  // job).
  ASSERT_TRUE(FailPoints::Arm("spill.read.eio@every:1").ok());
  auto run = RunTiGreedy(*f.instance, f.BudgetedOptions());
  FailPoints::Clear();
  ASSERT_TRUE(run.ok()) << run.status().message();
  EXPECT_GT(run.value().total_degradation_events, 0u);
  EXPECT_GT(run.value().total_recovered_sets, 0u);
}

TEST(SpillFaultTest, UnrecoverableReadErrorSurfacesAsResourceExhausted) {
  IoStateGuard guard;
  SpillFaultEndToEndFixture f;
  // Double fault: the cold read fails AND the re-sample recovery path
  // fails. The original fail-stop contract still holds.
  ASSERT_TRUE(
      FailPoints::Arm("spill.read.eio@every:1,spill.resample.throw@1").ok());
  auto run = RunTiGreedy(*f.instance, f.BudgetedOptions());
  FailPoints::Clear();
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kResourceExhausted);
}

TEST(SpillFaultTest, EnospcOnSpillWriteDegradesToResidentCompletion) {
  IoStateGuard guard;
  SpillFaultEndToEndFixture f;
  // The 3rd spill write fails with ENOSPC: that store's tier disables
  // eviction and the run finishes resident instead of aborting.
  ASSERT_TRUE(FailPoints::Arm("spill.write.enospc@3").ok());
  auto run = RunTiGreedy(*f.instance, f.BudgetedOptions());
  FailPoints::Clear();
  ASSERT_TRUE(run.ok()) << run.status().message();
  EXPECT_GT(run.value().total_degradation_events, 0u);
}

// ------------------------------------------------ end-to-end bit identity

// The acceptance gate: prefetch on/off (sync backend = off), io_uring vs
// fallback, O_DIRECT on vs off, 1/2/8 threads — all bit-identical to the
// unbudgeted single-thread reference.
TEST(SpillPrefetchTest, TiResultBitIdenticalAcrossBackendsAndThreads) {
  IoStateGuard guard;
  SpillFaultEndToEndFixture f;
  TiOptions options = f.BudgetedOptions();
  options.rr_memory_budget_bytes = 0;
  options.num_threads = 1;
  auto unbudgeted = RunTiGreedy(*f.instance, options);
  ASSERT_TRUE(unbudgeted.ok());
  const TiResult& reference = unbudgeted.value();
  ASSERT_GT(reference.total_seeds, 0u);
  uint64_t max_store_bytes = 0;
  for (const auto& st : reference.ad_stats) {
    max_store_bytes = std::max(max_store_bytes, st.rr_memory_bytes);
  }
  options.rr_memory_budget_bytes = max_store_bytes / 2;
  options.spill_chunk_bytes = 16u << 10;  // several chunks to pipeline
  // The fixture's spill is tiny; without this the direct_io dimension
  // would be silently demoted to buffered by the size gate.
  options.direct_io_min_bytes = 0;

  for (const AsyncIoBackend backend : Backends()) {
    SetAsyncIoBackendForTest(backend);
    for (const bool direct_io : {true, false}) {
      options.direct_io = direct_io;
      for (uint32_t threads : {1u, 2u, 8u}) {
        SCOPED_TRACE(testing::Message()
                     << BackendName(backend) << " "
                     << (direct_io ? "O_DIRECT" : "buffered") << " "
                     << threads << " threads");
        options.num_threads = threads;
        auto budgeted = RunTiGreedy(*f.instance, options);
        ASSERT_TRUE(budgeted.ok()) << budgeted.status().message();
        const TiResult& r = budgeted.value();
        EXPECT_EQ(reference.allocation.seed_sets, r.allocation.seed_sets);
        EXPECT_EQ(reference.total_revenue, r.total_revenue);  // bitwise
        EXPECT_EQ(reference.total_seeding_cost, r.total_seeding_cost);
        EXPECT_EQ(reference.total_seeds, r.total_seeds);
        EXPECT_EQ(reference.total_theta, r.total_theta);
        EXPECT_EQ(reference.total_growth_events, r.total_growth_events);
        // The run must exercise the pipeline for the comparison to mean
        // anything: chunks were read, and the budget genuinely bit.
        EXPECT_GT(r.total_spilled_bytes, 0u);
        EXPECT_GT(r.total_scan_reloads, 0u);
        EXPECT_GT(r.total_chunks_read, 0u);
        // direct_io=false must actually turn the probe off (the on case
        // is filesystem-dependent, so only the off direction is asserted).
        if (!direct_io) {
          EXPECT_EQ(r.stores_direct_io, 0u);
        }
      }
    }
  }
}

}  // namespace
}  // namespace isa
