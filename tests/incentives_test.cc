#include <gtest/gtest.h>

#include <cmath>

#include "core/incentives.h"

namespace isa::core {
namespace {

const std::vector<double> kSpreads = {1.0, 2.0, 4.0, 10.0};

TEST(IncentivesTest, LinearFormula) {
  auto c = ComputeIncentives(IncentiveModel::kLinear, 0.5, kSpreads);
  ASSERT_TRUE(c.ok());
  EXPECT_DOUBLE_EQ(c.value()[0], 0.5);
  EXPECT_DOUBLE_EQ(c.value()[3], 5.0);
}

TEST(IncentivesTest, ConstantIsAverageOfLinear) {
  auto c = ComputeIncentives(IncentiveModel::kConstant, 2.0, kSpreads);
  ASSERT_TRUE(c.ok());
  const double expected = 2.0 * (1 + 2 + 4 + 10) / 4.0;
  for (double v : c.value()) EXPECT_DOUBLE_EQ(v, expected);
}

TEST(IncentivesTest, SublinearIsLog) {
  auto c = ComputeIncentives(IncentiveModel::kSublinear, 3.0, kSpreads);
  ASSERT_TRUE(c.ok());
  EXPECT_DOUBLE_EQ(c.value()[0], 0.0);  // log(1) = 0
  EXPECT_DOUBLE_EQ(c.value()[2], 3.0 * std::log(4.0));
}

TEST(IncentivesTest, SuperlinearIsSquare) {
  auto c = ComputeIncentives(IncentiveModel::kSuperlinear, 0.1, kSpreads);
  ASSERT_TRUE(c.ok());
  EXPECT_DOUBLE_EQ(c.value()[3], 0.1 * 100.0);
}

TEST(IncentivesTest, SpreadsClampedToOne) {
  // sigma({u}) >= 1 by definition; sub-1 estimates are clamped so the
  // sublinear schedule stays non-negative.
  std::vector<double> tiny = {0.2, 0.0};
  for (auto model :
       {IncentiveModel::kLinear, IncentiveModel::kSublinear,
        IncentiveModel::kSuperlinear, IncentiveModel::kConstant}) {
    auto c = ComputeIncentives(model, 1.0, tiny);
    ASSERT_TRUE(c.ok());
    for (double v : c.value()) EXPECT_GE(v, 0.0);
  }
  auto lin = ComputeIncentives(IncentiveModel::kLinear, 1.0, tiny);
  EXPECT_DOUBLE_EQ(lin.value()[0], 1.0);
}

TEST(IncentivesTest, RejectsBadArgs) {
  EXPECT_FALSE(ComputeIncentives(IncentiveModel::kLinear, 0.0, kSpreads).ok());
  EXPECT_FALSE(
      ComputeIncentives(IncentiveModel::kLinear, -1.0, kSpreads).ok());
  EXPECT_FALSE(ComputeIncentives(IncentiveModel::kLinear, 1.0, {}).ok());
}

TEST(IncentivesTest, NameParseRoundTrip) {
  for (auto model :
       {IncentiveModel::kLinear, IncentiveModel::kConstant,
        IncentiveModel::kSublinear, IncentiveModel::kSuperlinear}) {
    auto parsed = ParseIncentiveModel(IncentiveModelName(model));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), model);
  }
  EXPECT_FALSE(ParseIncentiveModel("quadratic").ok());
}

// Monotonicity property: higher influence never earns a smaller incentive,
// for every model (paper: c_i(u) is a monotone function f of sigma_i({u})).
class IncentiveMonotonicity
    : public ::testing::TestWithParam<IncentiveModel> {};

TEST_P(IncentiveMonotonicity, MonotoneInSpread) {
  std::vector<double> spreads = {1.0, 1.5, 3.0, 7.0, 20.0, 100.0};
  auto c = ComputeIncentives(GetParam(), 0.25, spreads);
  ASSERT_TRUE(c.ok());
  for (size_t i = 1; i < spreads.size(); ++i) {
    EXPECT_GE(c.value()[i] + 1e-12, c.value()[i - 1]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, IncentiveMonotonicity,
    ::testing::Values(IncentiveModel::kLinear, IncentiveModel::kConstant,
                      IncentiveModel::kSublinear,
                      IncentiveModel::kSuperlinear));

}  // namespace
}  // namespace isa::core
