#include <gtest/gtest.h>

#include "core/curvature.h"
#include "core/ranks.h"
#include "core/spread_oracle.h"
#include "tests/test_util.h"

namespace isa::core {
namespace {

TEST(RanksTest, TightnessGadgetBracketsTrueRanks) {
  // Ground truth on the Figure-1 gadget: r = 1 ({b} is maximal),
  // R = 2 ({a, c} is maximal).
  auto owned = test::MakeTightnessGadget();
  auto oracle = ExactSpreadOracle::Create(*owned.instance);
  ASSERT_TRUE(oracle.ok());
  RankEstimatorOptions opt;
  opt.trials = 200;
  auto est = EstimateRanks(*owned.instance, *oracle.value(), opt);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est.value().lower_rank, 1u);
  EXPECT_EQ(est.value().upper_rank, 2u);
  EXPECT_GE(est.value().mean_size, 1.0);
  EXPECT_LE(est.value().mean_size, 2.0);
}

TEST(RanksTest, EstimateFeedsTheorem2Bound) {
  auto owned = test::MakeTightnessGadget();
  auto oracle = ExactSpreadOracle::Create(*owned.instance);
  ASSERT_TRUE(oracle.ok());
  RankEstimatorOptions opt;
  opt.trials = 200;
  auto est = EstimateRanks(*owned.instance, *oracle.value(), opt).value();
  EXPECT_DOUBLE_EQ(
      Theorem2Bound(1.0, est.lower_rank, est.upper_rank), 0.5);
}

TEST(RanksTest, UniformCostsGiveEqualRanks) {
  // With ample budget relative to all payments, every maximal set packs
  // the same number of seeds (the knapsacks never bind before nodes run
  // out): r == R == n.
  AdvertiserSpec ad;
  ad.cpe = 1.0;
  ad.budget = 1000.0;
  auto owned = test::MakeInstance(4, {{0, 1}, {2, 3}}, 0.0, {ad},
                                  {{1, 1, 1, 1}});
  auto oracle = ExactSpreadOracle::Create(*owned.instance);
  ASSERT_TRUE(oracle.ok());
  RankEstimatorOptions opt;
  opt.trials = 20;
  auto est = EstimateRanks(*owned.instance, *oracle.value(), opt).value();
  EXPECT_EQ(est.lower_rank, 4u);
  EXPECT_EQ(est.upper_rank, 4u);
}

TEST(RanksTest, MaxSetSizeCapRespected) {
  AdvertiserSpec ad;
  ad.cpe = 1.0;
  ad.budget = 1000.0;
  auto owned = test::MakeInstance(6, {{0, 1}}, 0.0, {ad},
                                  {std::vector<double>(6, 0.1)});
  auto oracle = ExactSpreadOracle::Create(*owned.instance);
  ASSERT_TRUE(oracle.ok());
  RankEstimatorOptions opt;
  opt.trials = 5;
  opt.max_set_size = 3;
  auto est = EstimateRanks(*owned.instance, *oracle.value(), opt).value();
  EXPECT_LE(est.upper_rank, 3u);
}

TEST(RanksTest, RejectsZeroTrials) {
  auto owned = test::MakeTightnessGadget();
  auto oracle = ExactSpreadOracle::Create(*owned.instance);
  RankEstimatorOptions opt;
  opt.trials = 0;
  EXPECT_FALSE(EstimateRanks(*owned.instance, *oracle.value(), opt).ok());
}

}  // namespace
}  // namespace isa::core
