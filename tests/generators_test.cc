#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "graph/generators.h"
#include "graph/stats.h"

namespace isa::graph {
namespace {

TEST(ErdosRenyiTest, ExactEdgeCount) {
  ErdosRenyiOptions opt{.num_nodes = 100, .num_edges = 500, .seed = 3};
  auto g = GenerateErdosRenyi(opt);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_nodes(), 100u);
  EXPECT_EQ(g.value().num_edges(), 500u);
}

TEST(ErdosRenyiTest, DeterministicInSeed) {
  ErdosRenyiOptions opt{.num_nodes = 50, .num_edges = 200, .seed = 9};
  auto g1 = GenerateErdosRenyi(opt);
  auto g2 = GenerateErdosRenyi(opt);
  ASSERT_TRUE(g1.ok() && g2.ok());
  for (NodeId u = 0; u < 50; ++u) {
    auto a = g1.value().OutNeighbors(u);
    auto b = g2.value().OutNeighbors(u);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
}

TEST(ErdosRenyiTest, SeedsDiffer) {
  ErdosRenyiOptions a{.num_nodes = 50, .num_edges = 200, .seed = 1};
  ErdosRenyiOptions b{.num_nodes = 50, .num_edges = 200, .seed = 2};
  auto g1 = GenerateErdosRenyi(a);
  auto g2 = GenerateErdosRenyi(b);
  bool differ = false;
  for (NodeId u = 0; u < 50 && !differ; ++u) {
    auto x = g1.value().OutNeighbors(u);
    auto y = g2.value().OutNeighbors(u);
    differ = !std::equal(x.begin(), x.end(), y.begin(), y.end());
  }
  EXPECT_TRUE(differ);
}

TEST(ErdosRenyiTest, RejectsImpossibleDensity) {
  ErdosRenyiOptions opt{.num_nodes = 3, .num_edges = 100, .seed = 1};
  EXPECT_FALSE(GenerateErdosRenyi(opt).ok());
}

TEST(ErdosRenyiTest, RejectsTinyGraph) {
  ErdosRenyiOptions opt{.num_nodes = 1, .num_edges = 0, .seed = 1};
  EXPECT_FALSE(GenerateErdosRenyi(opt).ok());
}

TEST(BarabasiAlbertTest, SizeAndConnectivity) {
  BarabasiAlbertOptions opt{.num_nodes = 500, .edges_per_node = 3, .seed = 4};
  auto g = GenerateBarabasiAlbert(opt);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_nodes(), 500u);
  GraphStats s = ComputeStats(g.value());
  EXPECT_EQ(s.largest_wcc, 500u);  // attachment keeps it connected
}

TEST(BarabasiAlbertTest, HeavyTailedInDegree) {
  BarabasiAlbertOptions opt{.num_nodes = 2000, .edges_per_node = 2,
                            .seed = 5};
  auto g = GenerateBarabasiAlbert(opt);
  ASSERT_TRUE(g.ok());
  GraphStats s = ComputeStats(g.value());
  // Preferential attachment concentrates in-degree far above the mean (~2).
  EXPECT_GT(s.max_in_degree, 30u);
}

TEST(BarabasiAlbertTest, BidirectionalVariant) {
  BarabasiAlbertOptions opt{.num_nodes = 300, .edges_per_node = 2,
                            .bidirectional = true, .seed = 6};
  auto g = GenerateBarabasiAlbert(opt);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(ComputeStats(g.value()).looks_bidirectional);
}

TEST(BarabasiAlbertTest, RejectsBadParams) {
  EXPECT_FALSE(GenerateBarabasiAlbert({.num_nodes = 5, .edges_per_node = 0})
                   .ok());
  EXPECT_FALSE(GenerateBarabasiAlbert({.num_nodes = 3, .edges_per_node = 5})
                   .ok());
}

TEST(RmatTest, ApproximateEdgeCount) {
  RmatOptions opt;
  opt.scale = 12;
  opt.num_edges = 20'000;
  opt.seed = 7;
  auto g = GenerateRmat(opt);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_nodes(), 4096u);
  // Oversampling compensates dedup; expect within 20% of the target.
  EXPECT_GT(g.value().num_edges(), 16'000u);
  EXPECT_LT(g.value().num_edges(), 24'000u);
}

TEST(RmatTest, SkewedDegrees) {
  RmatOptions opt;
  opt.scale = 12;
  opt.num_edges = 30'000;
  opt.seed = 8;
  auto g = GenerateRmat(opt);
  ASSERT_TRUE(g.ok());
  GraphStats s = ComputeStats(g.value());
  EXPECT_GT(s.max_out_degree, 50u);  // hubs from quadrant skew
}

TEST(RmatTest, RejectsBadQuadrants) {
  RmatOptions opt;
  opt.a = 0.5;
  opt.b = 0.5;
  opt.c = 0.5;
  opt.d = 0.5;  // sums to 2
  EXPECT_FALSE(GenerateRmat(opt).ok());
}

TEST(RmatTest, RejectsBadScale) {
  RmatOptions opt;
  opt.scale = 0;
  EXPECT_FALSE(GenerateRmat(opt).ok());
  opt.scale = 40;
  EXPECT_FALSE(GenerateRmat(opt).ok());
}

TEST(WattsStrogatzTest, RingStructureAtBetaZero) {
  WattsStrogatzOptions opt{.num_nodes = 20, .k = 4, .beta = 0.0, .seed = 1};
  auto g = GenerateWattsStrogatz(opt);
  ASSERT_TRUE(g.ok());
  // Every node links to k neighbors (k/2 each side, both arc directions).
  for (NodeId u = 0; u < 20; ++u) {
    EXPECT_EQ(g.value().OutDegree(u), 4u) << "node " << u;
  }
  EXPECT_TRUE(ComputeStats(g.value()).looks_bidirectional);
}

TEST(WattsStrogatzTest, RewiringChangesStructure) {
  WattsStrogatzOptions ring{.num_nodes = 200, .k = 4, .beta = 0.0,
                            .seed = 2};
  WattsStrogatzOptions rewired{.num_nodes = 200, .k = 4, .beta = 0.5,
                               .seed = 2};
  auto g1 = GenerateWattsStrogatz(ring);
  auto g2 = GenerateWattsStrogatz(rewired);
  ASSERT_TRUE(g1.ok() && g2.ok());
  bool differ = false;
  for (NodeId u = 0; u < 200 && !differ; ++u) {
    auto a = g1.value().OutNeighbors(u);
    auto b = g2.value().OutNeighbors(u);
    differ = !std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
  EXPECT_TRUE(differ);
}

TEST(WattsStrogatzTest, RejectsOddK) {
  WattsStrogatzOptions opt{.num_nodes = 10, .k = 3};
  EXPECT_FALSE(GenerateWattsStrogatz(opt).ok());
}

TEST(WattsStrogatzTest, RejectsBadBeta) {
  WattsStrogatzOptions opt{.num_nodes = 10, .k = 2, .beta = 1.5};
  EXPECT_FALSE(GenerateWattsStrogatz(opt).ok());
}

TEST(PowerLawTest, ApproximateEdgeCount) {
  PowerLawOptions opt{.num_nodes = 5000, .num_edges = 25'000,
                      .exponent = 2.1, .seed = 11};
  auto g = GeneratePowerLaw(opt);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_nodes(), 5000u);
  EXPECT_GT(g.value().num_edges(), 15'000u);
  EXPECT_LT(g.value().num_edges(), 30'000u);
}

TEST(PowerLawTest, HeavyTail) {
  PowerLawOptions opt{.num_nodes = 5000, .num_edges = 25'000,
                      .exponent = 2.0, .seed = 12};
  auto g = GeneratePowerLaw(opt);
  ASSERT_TRUE(g.ok());
  GraphStats s = ComputeStats(g.value());
  // Hubs are capped at ~2% of n (see generators.cc) but still sit an order
  // of magnitude above the mean degree of ~5.
  EXPECT_GT(s.max_out_degree, 10 * 5u);
}

TEST(PowerLawTest, RejectsBadExponent) {
  PowerLawOptions opt{.num_nodes = 100, .num_edges = 200, .exponent = 0.9};
  EXPECT_FALSE(GeneratePowerLaw(opt).ok());
}

// Parameterized determinism sweep across all generators.
class GeneratorDeterminism : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratorDeterminism, AllGeneratorsReproducible) {
  const uint64_t seed = GetParam();
  {
    ErdosRenyiOptions o{.num_nodes = 64, .num_edges = 256, .seed = seed};
    EXPECT_EQ(GenerateErdosRenyi(o).value().num_edges(),
              GenerateErdosRenyi(o).value().num_edges());
  }
  {
    BarabasiAlbertOptions o{.num_nodes = 64, .edges_per_node = 2,
                            .seed = seed};
    auto a = GenerateBarabasiAlbert(o);
    auto b = GenerateBarabasiAlbert(o);
    EXPECT_EQ(a.value().num_edges(), b.value().num_edges());
  }
  {
    RmatOptions o;
    o.scale = 8;
    o.num_edges = 500;
    o.seed = seed;
    EXPECT_EQ(GenerateRmat(o).value().num_edges(),
              GenerateRmat(o).value().num_edges());
  }
  {
    PowerLawOptions o{.num_nodes = 64, .num_edges = 300, .seed = seed};
    EXPECT_EQ(GeneratePowerLaw(o).value().num_edges(),
              GeneratePowerLaw(o).value().num_edges());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorDeterminism,
                         ::testing::Values(1, 17, 42, 1234, 99999));

}  // namespace
}  // namespace isa::graph
