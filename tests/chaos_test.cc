// Seeded chaos sweep over the failure-handling machinery. Each case arms
// one failpoint spec — by default from a fixed internal matrix; when the
// ISA_FAILPOINTS environment variable is set (the CI chaos job's rotating
// matrix) that spec is exercised instead — runs the budgeted end-to-end
// fixture, and asserts the recovery contract:
//
//   - read-side-only fault specs (spill.read / spill.resample / async.*)
//     must either complete with a TiResult whose computed fields are
//     bit-identical to the fault-free run, or fail with a clean
//     Status::ResourceExhausted (the unrecoverable double-fault case);
//   - write/alloc fault specs may deterministically change the schedule
//     (admission caps) or abort, so for them the contract is completion
//     with seeds OR a clean ResourceExhausted — never a crash, never a
//     silently different read-path result.
//
// Every trigger is a pure function of per-site hit counters, so each spec
// reproduces the same fault schedule on every run — a red chaos case
// replays exactly.
//
// NOTE: only this suite (and the registry/recovery suites, which arm
// their own specs) tolerate a set ISA_FAILPOINTS; the CI chaos job runs
// `ctest -R Chaos` under the env matrix for exactly that reason.

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "core/ti_greedy.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "topic/tic_model.h"

namespace isa {
namespace {

using core::RmInstance;
using core::RunTiGreedy;
using core::TiOptions;
using core::TiResult;
using graph::Graph;

struct ChaosFixture {
  Graph g;
  std::unique_ptr<RmInstance> instance;

  ChaosFixture() {
    graph::BarabasiAlbertOptions gopts;
    gopts.num_nodes = 150;
    gopts.edges_per_node = 9;
    gopts.seed = 9;
    auto graph = graph::GenerateBarabasiAlbert(gopts);
    ISA_CHECK(graph.ok());
    g = std::move(graph).value();
    auto topics = topic::MakeUniform(g, 1, 0.8);
    ISA_CHECK(topics.ok());
    std::vector<core::AdvertiserSpec> ads(3);
    ads[0].cpe = 0.2;
    ads[0].budget = 30.0;
    ads[1].cpe = 0.15;
    ads[1].budget = 25.0;
    ads[2].cpe = 0.25;
    ads[2].budget = 35.0;
    for (auto& ad : ads) ad.gamma = topic::TopicDistribution::Uniform(1);
    std::vector<std::vector<double>> incentives(
        3, std::vector<double>(g.num_nodes(), 1.0));
    auto inst = RmInstance::Create(g, topics.value(), std::move(ads),
                                   std::move(incentives));
    ISA_CHECK(inst.ok());
    instance = std::make_unique<RmInstance>(std::move(inst).value());
  }

  TiOptions Options() const {
    TiOptions options;
    options.epsilon = 0.3;
    options.seed = 1234;
    options.theta_cap = 200'000;
    options.num_threads = 2;
    options.rr_memory_budget_bytes = 1;  // spill + rescan constantly
    return options;
  }
};

// True when every entry of `spec` targets a read-side site, i.e. one that
// must never change a computed result (recovery is bit-identical and
// failures are clean).
bool ReadSideOnly(const std::string& spec) {
  auto parsed = FailPoints::Parse(spec);
  if (!parsed.ok()) return false;
  for (const FailPoints::Spec& s : parsed.value()) {
    if (s.site != "spill.read" && s.site != "spill.resample" &&
        s.site != "async.submit" && s.site != "async.complete") {
      return false;
    }
  }
  return true;
}

void RunChaosCase(const ChaosFixture& f, const TiResult& clean,
                  const std::string& spec) {
  SCOPED_TRACE(spec);
  FailPoints::Clear();
  ASSERT_TRUE(FailPoints::Arm(spec).ok()) << spec;
  auto run = RunTiGreedy(*f.instance, f.Options());
  FailPoints::Clear();
  if (!run.ok()) {
    // The only acceptable failure is the clean unrecoverable-fault status.
    EXPECT_EQ(run.status().code(), StatusCode::kResourceExhausted) << spec;
    return;
  }
  const TiResult& r = run.value();
  EXPECT_GT(r.total_seeds, 0u);
  if (ReadSideOnly(spec)) {
    EXPECT_EQ(clean.allocation.seed_sets, r.allocation.seed_sets);
    EXPECT_EQ(clean.total_revenue, r.total_revenue);  // bitwise
    EXPECT_EQ(clean.total_seeding_cost, r.total_seeding_cost);
    EXPECT_EQ(clean.total_seeds, r.total_seeds);
    EXPECT_EQ(clean.total_theta, r.total_theta);
    EXPECT_EQ(clean.total_growth_events, r.total_growth_events);
  }
}

// Fast single-spec case (the suite's smoke entry).
TEST(SpillChaosTest, SingleReadFaultSpecPreservesResult) {
  FailPoints::Clear();
  ChaosFixture f;
  auto clean = RunTiGreedy(*f.instance, f.Options());
  ASSERT_TRUE(clean.ok()) << clean.status().message();
  RunChaosCase(f, clean.value(), "spill.read.eio@p:0.5:2024");
}

TEST(SpillChaosTest, SeededFaultMatrixPreservesResultOrFailsClean) {
  FailPoints::Clear();
  ChaosFixture f;
  auto clean = RunTiGreedy(*f.instance, f.Options());
  ASSERT_TRUE(clean.ok()) << clean.status().message();
  ASSERT_EQ(clean.value().total_degradation_events, 0u);

  std::vector<std::string> specs;
  if (const char* env = std::getenv("ISA_FAILPOINTS")) {
    // CI chaos matrix: exercise the externally chosen spec.
    specs.push_back(env);
  } else {
    specs = {
        "spill.read.eio@every:1",
        "spill.read.eagain@every:3",
        "async.complete.eio@p:0.3:7,spill.read.eio@7",
        "async.submit.eio@every:2",
        "spill.read.eio@every:1,spill.resample.throw@5",
        "spill.write.enospc@p:0.2:99",
        "spill.write.enospc@2,spill.read.eof@p:0.1:5",
    };
  }
  for (const std::string& spec : specs) {
    RunChaosCase(f, clean.value(), spec);
  }
}

}  // namespace
}  // namespace isa
