// The out-of-core RR store: SpillFile round-trips, RrStore::SpillPrefix
// mechanics, cold-tier coverage removal equivalence, the TieredRrStore
// budget policy, and the end-to-end invariant — a fixed seed yields a
// bit-identical TiResult at any thread count and ANY memory budget
// (spilling changes where bytes live, never what is computed).

#include <sys/stat.h>

#include <algorithm>
#include <functional>
#include <vector>

#include "common/thread_pool.h"
#include "core/ti_greedy.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "rrset/parallel_sampler.h"
#include "rrset/rr_collection.h"
#include "rrset/spill_file.h"
#include "rrset/tiered_store.h"
#include "tests/test_util.h"
#include "topic/tic_model.h"

namespace isa {
namespace {

using core::CandidateRule;
using core::RmInstance;
using core::RunTiGreedy;
using core::SelectionRule;
using core::TiOptions;
using core::TiResult;
using graph::Graph;
using rrset::ParallelSampler;
using rrset::ParallelSamplerOptions;
using rrset::RrCollection;
using rrset::RrStore;
using rrset::SpillFile;
using rrset::SpillOptions;
using rrset::TieredRrStore;
using rrset::TieredStoreOptions;

Graph MakeBaGraph(graph::NodeId n, uint32_t m, uint64_t seed = 9) {
  graph::BarabasiAlbertOptions opts;
  opts.num_nodes = n;
  opts.edges_per_node = m;
  opts.seed = seed;
  auto g = graph::GenerateBarabasiAlbert(opts);
  ISA_CHECK(g.ok());
  return std::move(g).value();
}

ParallelSampler MakeSampler(const Graph& g, std::span<const double> probs,
                            uint32_t threads, uint64_t seed = 123) {
  ParallelSamplerOptions opts;
  opts.num_threads = threads;
  opts.min_sets_per_thread = 1;
  return ParallelSampler(g, probs, rrset::DiffusionModel::kIndependentCascade,
                         seed, opts);
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

// ------------------------------------------------------------- SpillFile

TEST(SpillFileTest, RoundTripChunksAndFooters) {
  const std::string path = rrset::MakeSpillPath();
  {
    SpillFile file(path);
    // Chunk 0: sets [0, 3) with members {5}, {7, 2}, {9, 9, 4}.
    const std::vector<uint32_t> sizes0 = {1, 2, 3};
    const std::vector<graph::NodeId> nodes0 = {5, 7, 2, 9, 9, 4};
    file.AppendChunk(0, 3, sizes0, nodes0);
    // Chunk 1: sets [3, 5) with members {1}, {8, 3}.
    const std::vector<uint32_t> sizes1 = {1, 2};
    const std::vector<graph::NodeId> nodes1 = {1, 8, 3};
    file.AppendChunk(3, 5, sizes1, nodes1);

    ASSERT_EQ(file.num_chunks(), 2u);
    const auto chunks = file.chunks();
    EXPECT_EQ(chunks[0].set_lo, 0u);
    EXPECT_EQ(chunks[0].set_hi, 3u);
    EXPECT_EQ(chunks[0].node_min, 2u);
    EXPECT_EQ(chunks[0].node_max, 9u);
    EXPECT_EQ(chunks[0].postings, 6u);
    EXPECT_EQ(chunks[1].set_lo, 3u);
    EXPECT_EQ(chunks[1].node_min, 1u);
    EXPECT_EQ(chunks[1].node_max, 8u);
    EXPECT_GT(file.bytes_on_disk(), 0u);
    EXPECT_TRUE(FileExists(path));

    std::vector<uint32_t> sizes;
    std::vector<graph::NodeId> nodes;
    file.ReadChunk(0, &sizes, &nodes);
    EXPECT_EQ(sizes, sizes0);
    EXPECT_EQ(nodes, nodes0);
    file.ReadChunk(1, &sizes, &nodes);
    EXPECT_EQ(sizes, sizes1);
    EXPECT_EQ(nodes, nodes1);
  }
  // The chunk file is a cache, not a persistence format: gone with the
  // object.
  EXPECT_FALSE(FileExists(path));
}

// --------------------------------------------------- RrStore::SpillPrefix

struct SpilledStoreCase {
  RrStore store;
  std::vector<std::vector<graph::NodeId>> members;       // per set, pre-spill
  std::vector<std::vector<uint32_t>> sets_containing;    // per node, pre-spill

  explicit SpilledStoreCase(const Graph& g, uint64_t sets) : store(g.num_nodes()) {
    const std::vector<double> probs(g.num_edges(), 0.1);
    MakeSampler(g, probs, /*threads=*/1).SampleAppend(store, sets);
    for (uint64_t r = 0; r < store.num_sets(); ++r) {
      auto m = store.SetMembers(r);
      members.emplace_back(m.begin(), m.end());
    }
    for (graph::NodeId v = 0; v < store.num_nodes(); ++v) {
      sets_containing.push_back(store.SetsContaining(v));
    }
  }
};

// Collects ForEachSpilledSetContaining(v) into (id, members) pairs.
std::vector<std::pair<uint64_t, std::vector<graph::NodeId>>> SpilledHits(
    const RrStore& store, graph::NodeId v, uint64_t max_id,
    ThreadPool* pool = nullptr, std::span<const uint8_t> alive = {}) {
  std::vector<std::pair<uint64_t, std::vector<graph::NodeId>>> out;
  store.ForEachSpilledSetContaining(
      v, max_id, pool, alive,
      [&](uint64_t r, std::span<const graph::NodeId> m) {
        out.emplace_back(r, std::vector<graph::NodeId>(m.begin(), m.end()));
      });
  return out;
}

TEST(SpillStoreTest, SpillPrefixPreservesQueriesAndShrinksMemory) {
  const Graph g = MakeBaGraph(300, 3);
  SpilledStoreCase c(g, 4000);
  RrStore& store = c.store;
  const uint64_t bytes_before = store.MemoryBytes();
  const double mean_before = store.MeanSetSize();

  SpillOptions so;
  so.path = rrset::MakeSpillPath();
  so.chunk_target_bytes = 1u << 14;  // several chunks
  store.SpillPrefix(2000, so);

  EXPECT_EQ(store.num_sets(), 4000u);
  EXPECT_EQ(store.first_resident_set(), 2000u);
  EXPECT_GT(store.SpilledBytes(), 0u);
  EXPECT_GT(store.SpillChunks(), 1u);
  EXPECT_LT(store.MemoryBytes(), bytes_before);
  EXPECT_DOUBLE_EQ(store.MeanSetSize(), mean_before);

  // Hot sets read back unchanged; the index now stops at the frontier.
  for (uint64_t r = 2000; r < 4000; ++r) {
    const auto m = store.SetMembers(r);
    ASSERT_TRUE(std::equal(m.begin(), m.end(), c.members[r].begin(),
                           c.members[r].end()))
        << "set " << r;
  }
  for (graph::NodeId v = 0; v < store.num_nodes(); ++v) {
    std::vector<uint32_t> expected_hot;
    for (uint32_t r : c.sets_containing[v]) {
      if (r >= 2000) expected_hot.push_back(r);
    }
    EXPECT_EQ(store.SetsContaining(v), expected_hot) << "node " << v;
  }

  // The cold tier serves exactly the spilled sets, ascending, with their
  // original members.
  const uint64_t reloads_before = store.scan_reloads();
  for (graph::NodeId v = 0; v < store.num_nodes(); ++v) {
    const auto hits = SpilledHits(store, v, 4000);
    std::vector<uint32_t> expected_cold;
    for (uint32_t r : c.sets_containing[v]) {
      if (r < 2000) expected_cold.push_back(r);
    }
    ASSERT_EQ(hits.size(), expected_cold.size()) << "node " << v;
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].first, expected_cold[i]);
      EXPECT_EQ(hits[i].second, c.members[expected_cold[i]]);
    }
  }
  EXPECT_GT(store.scan_reloads(), reloads_before);

  // Spill the rest: the store can go fully cold and still serve scans.
  store.SpillPrefix(4000, so);
  EXPECT_EQ(store.first_resident_set(), 4000u);
  const auto hits = SpilledHits(store, 0, 4000);
  std::vector<uint32_t> expected;
  for (uint32_t r : c.sets_containing[0]) expected.push_back(r);
  ASSERT_EQ(hits.size(), expected.size());
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].first, expected[i]);
  }
}

TEST(SpillStoreTest, ParallelScanMatchesSerial) {
  const Graph g = MakeBaGraph(300, 3);
  SpilledStoreCase c(g, 4000);
  SpillOptions so;
  so.chunk_target_bytes = 1u << 12;  // many chunks so the pool has work
  c.store.SpillPrefix(3500, so);
  ASSERT_GT(c.store.SpillChunks(), 3u);

  ThreadPool pool(4);
  for (graph::NodeId v = 0; v < c.store.num_nodes(); v += 7) {
    const auto serial = SpilledHits(c.store, v, 4000, nullptr);
    const auto parallel = SpilledHits(c.store, v, 4000, &pool);
    ASSERT_EQ(serial.size(), parallel.size()) << "node " << v;
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].first, parallel[i].first);
      EXPECT_EQ(serial[i].second, parallel[i].second);
    }
  }
}

// The alive filter must drop sets before the membership scan (the
// RemoveCoveredBy alive flags ride on it, so covered sets cost nothing);
// serial and pooled paths must agree on the filtered view.
TEST(SpillStoreTest, AliveFilterDropsBeforeEmit) {
  const Graph g = MakeBaGraph(200, 3);
  SpilledStoreCase c(g, 1500);
  SpillOptions so;
  so.chunk_target_bytes = 1u << 12;
  c.store.SpillPrefix(1500, so);

  ThreadPool pool(4);
  std::vector<uint8_t> even_only(1500);
  for (size_t r = 0; r < even_only.size(); ++r) even_only[r] = r % 2 == 0;
  for (graph::NodeId v = 0; v < c.store.num_nodes(); v += 11) {
    std::vector<uint32_t> expected;
    for (uint32_t r : c.sets_containing[v]) {
      if (r % 2 == 0) expected.push_back(r);
    }
    for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
      const auto hits = SpilledHits(c.store, v, 1500, p, even_only);
      ASSERT_EQ(hits.size(), expected.size()) << "node " << v;
      for (size_t i = 0; i < hits.size(); ++i) {
        EXPECT_EQ(hits[i].first, expected[i]);
        EXPECT_EQ(hits[i].second, c.members[expected[i]]);
      }
    }
  }
}

TEST(SpillStoreTest, OneSetPerChunkDegenerateTarget) {
  const Graph g = MakeBaGraph(120, 3);
  SpilledStoreCase c(g, 500);
  SpillOptions so;
  so.chunk_target_bytes = 1;  // smaller than any set: one set per chunk
  c.store.SpillPrefix(500, so);
  EXPECT_EQ(c.store.SpillChunks(), 500u);
  const auto hits = SpilledHits(c.store, 5, 500);
  std::vector<uint32_t> expected;
  for (uint32_t r : c.sets_containing[5]) expected.push_back(r);
  ASSERT_EQ(hits.size(), expected.size());
}

// ------------------------------------------- cold-tier coverage removal

// The same seed-commit sequence over a resident-only store and a spilled
// store must produce identical coverage state — RemoveCoveredBy is the one
// consumer that re-reads cold members.
TEST(SpillCollectionTest, RemoveCoveredByMatchesResidentStore) {
  const Graph g = MakeBaGraph(300, 3);
  const std::vector<double> probs(g.num_edges(), 0.1);
  ThreadPool pool(4);

  for (const bool use_pool : {false, true}) {
    SCOPED_TRACE(use_pool ? "pooled scan" : "serial scan");
    RrCollection resident(g.num_nodes());
    RrCollection spilled(g.num_nodes());
    {
      ParallelSampler s1 = MakeSampler(g, probs, 1);
      resident.AddSets(s1, 3000, {});
    }
    {
      ParallelSampler s2 = MakeSampler(g, probs, 1);
      spilled.AddSets(s2, 3000, {});
    }
    SpillOptions so;
    so.chunk_target_bytes = 1u << 13;
    spilled.store()->SpillPrefix(1500, so);

    std::vector<graph::NodeId> touched_a, touched_b;
    for (const graph::NodeId seed : {7u, 42u, 199u, 42u, 0u, 250u}) {
      const uint32_t removed_a = resident.RemoveCoveredBy(seed, &touched_a);
      const uint32_t removed_b = spilled.RemoveCoveredBy(
          seed, &touched_b, use_pool ? &pool : nullptr);
      ASSERT_EQ(removed_a, removed_b) << "seed " << seed;
      ASSERT_EQ(touched_a, touched_b) << "seed " << seed;
      ASSERT_EQ(resident.covered_sets(), spilled.covered_sets());
      for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
        ASSERT_EQ(resident.CoverageOf(v), spilled.CoverageOf(v))
            << "seed " << seed << " node " << v;
      }
    }
  }
}

// ------------------------------------------------------- TieredRrStore

TEST(SpillTieredTest, BudgetLargerThanEverythingIsNoOp) {
  const Graph g = MakeBaGraph(120, 3);
  auto store = std::make_shared<RrStore>(g.num_nodes());
  const std::vector<double> probs(g.num_edges(), 0.1);
  MakeSampler(g, probs, 1).SampleAppend(*store, 1000);
  const uint64_t bytes = store->MemoryBytes();

  TieredStoreOptions to;
  to.rr_memory_budget_bytes = bytes * 100;
  TieredRrStore tier(store, to);
  tier.MaybeSpill(store->num_sets());
  EXPECT_EQ(store->first_resident_set(), 0u);
  EXPECT_EQ(store->SpilledBytes(), 0u);
  EXPECT_EQ(tier.spill_events(), 0u);
  EXPECT_EQ(store->MemoryBytes(), bytes);  // untouched, byte for byte
  EXPECT_EQ(tier.meter().peak_bytes(), bytes);
  EXPECT_EQ(tier.meter().spilled_bytes(), 0u);
}

TEST(SpillTieredTest, TinyBudgetSpillsEverythingEvictable) {
  const Graph g = MakeBaGraph(120, 3);
  auto store = std::make_shared<RrStore>(g.num_nodes());
  const std::vector<double> probs(g.num_edges(), 0.1);
  MakeSampler(g, probs, 1).SampleAppend(*store, 1000);
  const uint64_t bytes_before = store->MemoryBytes();

  TieredStoreOptions to;
  to.rr_memory_budget_bytes = 1;  // smaller than any chunk
  to.chunk_target_bytes = 1u << 12;
  TieredRrStore tier(store, to);
  // Only fully-adopted ids may go: cap at 600 first.
  tier.MaybeSpill(600);
  EXPECT_EQ(store->first_resident_set(), 600u);
  tier.MaybeSpill(1000);
  EXPECT_EQ(store->first_resident_set(), 1000u);
  EXPECT_EQ(tier.spill_events(), 2u);
  EXPECT_LT(store->MemoryBytes(), bytes_before);
  EXPECT_GT(tier.meter().spilled_bytes(), 0u);
  // Budget already satisfied or nothing evictable: further calls no-op.
  tier.MaybeSpill(1000);
  EXPECT_EQ(tier.spill_events(), 2u);
}

// ------------------------------------------------------------ end to end

// High-influence fixture (as in advertiser_engine_test.cc): θ-growth
// engages several times per run, which is what moves the spill barrier and
// the async-adoption interplay onto the hot path.
struct SpillEndToEndFixture {
  Graph g = MakeBaGraph(150, 9);
  std::unique_ptr<RmInstance> instance;

  SpillEndToEndFixture() {
    auto topics = topic::MakeUniform(g, 1, 0.8);
    ISA_CHECK(topics.ok());
    std::vector<core::AdvertiserSpec> ads(3);
    ads[0].cpe = 0.2;
    ads[0].budget = 30.0;
    ads[1].cpe = 0.15;
    ads[1].budget = 25.0;
    ads[2].cpe = 0.25;
    ads[2].budget = 35.0;
    for (auto& ad : ads) ad.gamma = topic::TopicDistribution::Uniform(1);
    std::vector<std::vector<double>> incentives(
        3, std::vector<double>(g.num_nodes(), 1.0));
    auto inst = RmInstance::Create(g, topics.value(), std::move(ads),
                                   std::move(incentives));
    ISA_CHECK(inst.ok());
    instance = std::make_unique<RmInstance>(std::move(inst).value());
  }

  TiOptions BaseOptions() const {
    TiOptions options;
    options.epsilon = 0.3;
    options.seed = 1234;
    options.theta_cap = 200'000;
    return options;
  }
};

// Everything the algorithm computes — never the memory/spill statistics,
// which legitimately differ across budgets.
void ExpectComputedResultsIdentical(const TiResult& a, const TiResult& b) {
  EXPECT_EQ(a.allocation.seed_sets, b.allocation.seed_sets);
  EXPECT_EQ(a.total_revenue, b.total_revenue);  // bitwise
  EXPECT_EQ(a.total_seeding_cost, b.total_seeding_cost);
  EXPECT_EQ(a.total_seeds, b.total_seeds);
  EXPECT_EQ(a.total_theta, b.total_theta);
  EXPECT_EQ(a.total_growth_events, b.total_growth_events);
  EXPECT_EQ(a.ads_growth_engaged, b.ads_growth_engaged);
  EXPECT_EQ(a.ads_growth_idle, b.ads_growth_idle);
  EXPECT_EQ(a.total_theta_cap_hits, b.total_theta_cap_hits);
  ASSERT_EQ(a.ad_stats.size(), b.ad_stats.size());
  for (size_t j = 0; j < a.ad_stats.size(); ++j) {
    SCOPED_TRACE(testing::Message() << "ad " << j);
    EXPECT_EQ(a.ad_stats[j].theta, b.ad_stats[j].theta);
    EXPECT_EQ(a.ad_stats[j].latent_seed_size, b.ad_stats[j].latent_seed_size);
    EXPECT_EQ(a.ad_stats[j].revenue, b.ad_stats[j].revenue);
    EXPECT_EQ(a.ad_stats[j].payment, b.ad_stats[j].payment);
    EXPECT_EQ(a.ad_stats[j].seeding_cost, b.ad_stats[j].seeding_cost);
    EXPECT_EQ(a.ad_stats[j].sample_growth_events,
              b.ad_stats[j].sample_growth_events);
    EXPECT_EQ(a.ad_stats[j].idle_growth_revisions,
              b.ad_stats[j].idle_growth_revisions);
    EXPECT_EQ(a.ad_stats[j].theta_cap_hits, b.ad_stats[j].theta_cap_hits);
  }
}

// Budget at ~50% of the largest store: spills genuinely happen, results
// stay bit-identical at 1/2/8 threads, sync and async growth alike.
TEST(SpillEndToEndTest, TiResultBitIdenticalAtHalfBudgetAcrossThreads) {
  SpillEndToEndFixture f;
  struct Config {
    const char* name;
    CandidateRule rule;
    SelectionRule sel;
    uint32_t window;
  };
  const Config configs[] = {
      {"coverage", CandidateRule::kCoverage,
       SelectionRule::kMaxMarginalRevenue, 0},
      {"ratio-full", CandidateRule::kCoverageCostRatio,
       SelectionRule::kMaxRate, 0},
      {"ratio-window", CandidateRule::kCoverageCostRatio,
       SelectionRule::kMaxRate, 8},
  };

  for (const bool async : {false, true}) {
    for (const Config& cfg : configs) {
      SCOPED_TRACE(testing::Message()
                   << cfg.name << (async ? " async" : " sync"));
      TiOptions options = f.BaseOptions();
      options.candidate_rule = cfg.rule;
      options.selection_rule = cfg.sel;
      options.window = cfg.window;
      options.async_growth = async;
      options.num_threads = 1;

      auto unbudgeted = RunTiGreedy(*f.instance, options);
      ASSERT_TRUE(unbudgeted.ok()) << unbudgeted.status().message();
      const TiResult& reference = unbudgeted.value();
      ASSERT_GT(reference.total_seeds, 0u);
      if (async) {
        // The fixture must actually exercise the async adoption barrier.
        ASSERT_GT(reference.total_growth_events, 0u);
      }
      uint64_t max_store_bytes = 0;
      for (const auto& st : reference.ad_stats) {
        max_store_bytes = std::max(max_store_bytes, st.rr_memory_bytes);
      }

      options.rr_memory_budget_bytes = max_store_bytes / 2;
      for (uint32_t threads : {1u, 2u, 8u}) {
        SCOPED_TRACE(testing::Message() << threads << " threads");
        options.num_threads = threads;
        auto budgeted = RunTiGreedy(*f.instance, options);
        ASSERT_TRUE(budgeted.ok()) << budgeted.status().message();
        ExpectComputedResultsIdentical(reference, budgeted.value());
        // The budget must have bitten — otherwise this test proves nothing.
        EXPECT_GT(budgeted.value().total_spilled_bytes, 0u);
        EXPECT_GT(budgeted.value().total_spill_chunks, 0u);
        // Barrier-observed resident peaks honor the budget: everything
        // over it was fully adopted and therefore evictable here.
        for (const auto& st : budgeted.value().ad_stats) {
          if (st.rr_resident_peak_bytes > 0) {
            EXPECT_LE(st.rr_resident_peak_bytes,
                      options.rr_memory_budget_bytes);
          }
        }
      }
    }
  }
}

// A 1-byte budget spills everything evictable at every barrier — the
// maximally hostile schedule: constant evictions, every coverage removal
// scanning cold chunks, async adoptions landing into a spilled store.
TEST(SpillEndToEndTest, PathologicalOneByteBudgetStillBitIdentical) {
  SpillEndToEndFixture f;
  for (const bool async : {false, true}) {
    SCOPED_TRACE(async ? "async" : "sync");
    TiOptions options = f.BaseOptions();
    options.async_growth = async;
    options.num_threads = 1;
    auto unbudgeted = RunTiGreedy(*f.instance, options);
    ASSERT_TRUE(unbudgeted.ok());

    options.rr_memory_budget_bytes = 1;
    for (uint32_t threads : {1u, 8u}) {
      SCOPED_TRACE(testing::Message() << threads << " threads");
      options.num_threads = threads;
      auto budgeted = RunTiGreedy(*f.instance, options);
      ASSERT_TRUE(budgeted.ok()) << budgeted.status().message();
      ExpectComputedResultsIdentical(unbudgeted.value(), budgeted.value());
      EXPECT_GT(budgeted.value().total_spilled_bytes, 0u);
      EXPECT_GT(budgeted.value().total_scan_reloads, 0u);
    }
  }
}

// Budget above every store's footprint: the tier never spills and the run
// is byte-identical to the unbudgeted one INCLUDING the memory statistics
// (the no-op path really is a no-op).
TEST(SpillEndToEndTest, HugeBudgetIsByteIdenticalNoOp) {
  SpillEndToEndFixture f;
  TiOptions options = f.BaseOptions();
  options.num_threads = 2;
  auto unbudgeted = RunTiGreedy(*f.instance, options);
  ASSERT_TRUE(unbudgeted.ok());

  options.rr_memory_budget_bytes = 1ull << 40;
  auto budgeted = RunTiGreedy(*f.instance, options);
  ASSERT_TRUE(budgeted.ok());
  ExpectComputedResultsIdentical(unbudgeted.value(), budgeted.value());
  EXPECT_EQ(budgeted.value().total_spilled_bytes, 0u);
  EXPECT_EQ(budgeted.value().total_spill_chunks, 0u);
  EXPECT_EQ(budgeted.value().total_scan_reloads, 0u);
  EXPECT_EQ(budgeted.value().total_rr_memory_bytes,
            unbudgeted.value().total_rr_memory_bytes);
  ASSERT_EQ(budgeted.value().ad_stats.size(),
            unbudgeted.value().ad_stats.size());
  for (size_t j = 0; j < budgeted.value().ad_stats.size(); ++j) {
    EXPECT_EQ(budgeted.value().ad_stats[j].rr_memory_bytes,
              unbudgeted.value().ad_stats[j].rr_memory_bytes);
  }
}

// Shared stores spill too: the evictable frontier is the MIN adopted θ
// over the store's views, so no view ever loses unadopted or unread sets.
TEST(SpillEndToEndTest, SharedStoreBudgetedMatchesUnbudgeted) {
  SpillEndToEndFixture f;
  TiOptions options = f.BaseOptions();
  options.share_samples = true;
  options.num_threads = 1;
  auto unbudgeted = RunTiGreedy(*f.instance, options);
  ASSERT_TRUE(unbudgeted.ok());

  options.rr_memory_budget_bytes = 1;
  for (uint32_t threads : {1u, 8u}) {
    SCOPED_TRACE(testing::Message() << threads << " threads");
    options.num_threads = threads;
    auto budgeted = RunTiGreedy(*f.instance, options);
    ASSERT_TRUE(budgeted.ok());
    ExpectComputedResultsIdentical(unbudgeted.value(), budgeted.value());
    EXPECT_GT(budgeted.value().total_spilled_bytes, 0u);
  }
}

}  // namespace
}  // namespace isa
