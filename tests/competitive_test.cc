#include <gtest/gtest.h>

#include "diffusion/cascade.h"
#include "diffusion/competitive.h"
#include "tests/test_util.h"

namespace isa::diffusion {
namespace {

using Probs = std::vector<double>;

TEST(CompetitiveTest, SingleAdReducesToPlainCascade) {
  auto g = test::MustGraph(4, {{0, 1}, {1, 2}, {2, 3}});
  Probs p(g.num_edges(), 1.0);
  std::span<const double> views[1] = {p};
  std::vector<graph::NodeId> seeds[1] = {{0}};
  Rng rng(3);
  auto outcome = RunCompetitiveCascade(g, views, seeds, rng);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().engagements[0], 4u);
  EXPECT_EQ(outcome.value().total, 4u);
}

TEST(CompetitiveTest, ClaimedNodesBlockOtherAds) {
  // Two chains meeting at node 2: 0 -> 2 and 1 -> 2 with p = 1.
  // Ad 0 seeds {0}, ad 1 seeds {1}; exactly one of them claims node 2.
  auto g = test::MustGraph(3, {{0, 2}, {1, 2}});
  Probs p(g.num_edges(), 1.0);
  std::span<const double> views[2] = {p, p};
  std::vector<graph::NodeId> seeds[2] = {{0}, {1}};
  Rng rng(5);
  for (int t = 0; t < 50; ++t) {
    auto outcome = RunCompetitiveCascade(g, views, seeds, rng);
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.value().total, 3u);
    EXPECT_EQ(outcome.value().engagements[0] +
                  outcome.value().engagements[1],
              3u);
    EXPECT_GE(outcome.value().engagements[0], 1u);  // at least its seed
    EXPECT_GE(outcome.value().engagements[1], 1u);
  }
}

TEST(CompetitiveTest, SameRoundConflictsSplitEvenly) {
  auto g = test::MustGraph(3, {{0, 2}, {1, 2}});
  Probs p(g.num_edges(), 1.0);
  std::span<const double> views[2] = {p, p};
  std::vector<graph::NodeId> seeds[2] = {{0}, {1}};
  auto mean = EstimateCompetitiveEngagements(g, views, seeds, 40'000, 11);
  ASSERT_TRUE(mean.ok());
  // Node 2 goes to each ad ~half the time: engagements ~ 1.5 each.
  EXPECT_NEAR(mean.value()[0], 1.5, 0.02);
  EXPECT_NEAR(mean.value()[1], 1.5, 0.02);
}

TEST(CompetitiveTest, CompetitionNeverExceedsIndependentSpread) {
  auto g = test::MustGraph(6, {{0, 2}, {2, 3}, {1, 3}, {3, 4}, {3, 5}});
  Probs p(g.num_edges(), 0.7);
  std::span<const double> views[2] = {p, p};
  std::vector<graph::NodeId> seeds[2] = {{0}, {1}};
  auto competitive =
      EstimateCompetitiveEngagements(g, views, seeds, 30'000, 13);
  ASSERT_TRUE(competitive.ok());
  CascadeSimulator sim(g);
  const double indep0 = sim.EstimateSpread(p, seeds[0], 30'000, 17);
  const double indep1 = sim.EstimateSpread(p, seeds[1], 30'000, 19);
  EXPECT_LE(competitive.value()[0], indep0 + 0.02);
  EXPECT_LE(competitive.value()[1], indep1 + 0.02);
  // And competition genuinely bites somewhere on this overlapping gadget.
  EXPECT_LT(competitive.value()[0] + competitive.value()[1],
            indep0 + indep1 - 0.05);
}

TEST(CompetitiveTest, DuplicateSeedGoesToLowerAd) {
  auto g = test::MustGraph(2, {{0, 1}});
  Probs p(g.num_edges(), 0.0);
  std::span<const double> views[2] = {p, p};
  std::vector<graph::NodeId> seeds[2] = {{0}, {0}};
  Rng rng(7);
  auto outcome = RunCompetitiveCascade(g, views, seeds, rng);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().engagements[0], 1u);
  EXPECT_EQ(outcome.value().engagements[1], 0u);
}

TEST(CompetitiveTest, ValidationErrors) {
  auto g = test::MustGraph(2, {{0, 1}});
  Probs p(g.num_edges(), 0.5);
  Probs bad(3, 0.5);
  std::span<const double> views[2] = {p, bad};
  std::vector<graph::NodeId> seeds[2] = {{0}, {1}};
  Rng rng(9);
  EXPECT_FALSE(RunCompetitiveCascade(g, views, seeds, rng).ok());

  std::span<const double> one_view[1] = {p};
  EXPECT_FALSE(RunCompetitiveCascade(g, one_view, seeds, rng).ok());

  std::span<const double> views_ok[2] = {p, p};
  std::vector<graph::NodeId> bad_seeds[2] = {{0}, {9}};
  EXPECT_FALSE(RunCompetitiveCascade(g, views_ok, bad_seeds, rng).ok());
  EXPECT_FALSE(
      EstimateCompetitiveEngagements(g, views_ok, seeds, 0, 1).ok());
}

}  // namespace
}  // namespace isa::diffusion
