#include <gtest/gtest.h>

#include <memory>

#include "core/spread_oracle.h"
#include "core/ti_greedy.h"
#include "graph/generators.h"
#include "tests/test_util.h"
#include "topic/tic_model.h"

namespace isa::core {
namespace {

AdvertiserSpec Ad(double cpe, double budget) {
  AdvertiserSpec a;
  a.cpe = cpe;
  a.budget = budget;
  a.gamma = topic::TopicDistribution::Uniform(1);
  return a;
}

// A medium instance on a BA graph with weighted-cascade probabilities and
// linear-style skewed incentives.
struct MediumFixture {
  std::unique_ptr<graph::Graph> graph;
  std::unique_ptr<topic::TopicEdgeProbabilities> topics;
  std::unique_ptr<RmInstance> instance;
};

MediumFixture MakeMedium(uint32_t h, double budget, double alpha = 0.2,
                         graph::NodeId n = 400) {
  MediumFixture f;
  auto g = graph::GenerateBarabasiAlbert(
      {.num_nodes = n, .edges_per_node = 3, .seed = 7});
  ISA_CHECK(g.ok());
  f.graph = std::make_unique<graph::Graph>(std::move(g).value());
  auto topics = topic::MakeWeightedCascade(*f.graph, 1);
  ISA_CHECK(topics.ok());
  f.topics = std::make_unique<topic::TopicEdgeProbabilities>(
      std::move(topics).value());
  // Linear incentives on the out-degree proxy.
  std::vector<double> cost(f.graph->num_nodes());
  for (graph::NodeId u = 0; u < f.graph->num_nodes(); ++u) {
    cost[u] = alpha * (1.0 + f.graph->OutDegree(u));
  }
  std::vector<AdvertiserSpec> ads(h, Ad(1.0, budget));
  std::vector<std::vector<double>> incentives(h, cost);
  auto inst =
      RmInstance::Create(*f.graph, *f.topics, std::move(ads),
                         std::move(incentives));
  ISA_CHECK(inst.ok());
  f.instance = std::make_unique<RmInstance>(std::move(inst).value());
  return f;
}

TiOptions FastOptions() {
  TiOptions opt;
  opt.epsilon = 0.3;
  opt.theta_cap = 30'000;
  opt.seed = 11;
  return opt;
}

TEST(TiGreedyTest, CarmProducesFeasibleAllocation) {
  auto f = MakeMedium(3, 40.0);
  auto res = RunTiCarm(*f.instance, FastOptions());
  ASSERT_TRUE(res.ok());
  const TiResult& r = res.value();
  EXPECT_TRUE(r.allocation.IsDisjoint(f.instance->num_nodes()));
  for (uint32_t j = 0; j < 3; ++j) {
    EXPECT_LE(r.ad_stats[j].payment, f.instance->budget(j) + 1e-6);
    EXPECT_GT(r.ad_stats[j].theta, 0u);
  }
  EXPECT_GT(r.total_seeds, 0u);
  EXPECT_GT(r.total_revenue, 0.0);
  EXPECT_GT(r.total_rr_memory_bytes, 0u);
}

TEST(TiGreedyTest, CsrmProducesFeasibleAllocation) {
  auto f = MakeMedium(3, 40.0);
  auto res = RunTiCsrm(*f.instance, FastOptions());
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res.value().allocation.IsDisjoint(f.instance->num_nodes()));
  for (uint32_t j = 0; j < 3; ++j) {
    EXPECT_LE(res.value().ad_stats[j].payment,
              f.instance->budget(j) + 1e-6);
  }
}

TEST(TiGreedyTest, DeterministicInSeed) {
  auto f = MakeMedium(2, 30.0);
  auto a = RunTiCsrm(*f.instance, FastOptions());
  auto b = RunTiCsrm(*f.instance, FastOptions());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().allocation.seed_sets, b.value().allocation.seed_sets);
  EXPECT_DOUBLE_EQ(a.value().total_revenue, b.value().total_revenue);
}

TEST(TiGreedyTest, SeedsChangeWithSeed) {
  auto f = MakeMedium(2, 30.0);
  TiOptions o1 = FastOptions(), o2 = FastOptions();
  o2.seed = 999;
  auto a = RunTiCsrm(*f.instance, o1);
  auto b = RunTiCsrm(*f.instance, o2);
  ASSERT_TRUE(a.ok() && b.ok());
  // Different RR samples; allocations usually differ at least somewhere.
  // (Not guaranteed in principle, but stable for this fixture.)
  EXPECT_NE(a.value().allocation.seed_sets, b.value().allocation.seed_sets);
}

TEST(TiGreedyTest, CsrmIsMoreCostEffectiveThanCarm) {
  // The cost-sensitive rule targets cheaper seeds per unit revenue. CSRM
  // may buy MORE seeds in total (the paper reports 7276 vs 4676 on DBLP),
  // so the invariant is seeding cost per unit revenue, not absolute cost.
  auto f = MakeMedium(3, 60.0, /*alpha=*/0.5);
  auto carm = RunTiCarm(*f.instance, FastOptions());
  auto csrm = RunTiCsrm(*f.instance, FastOptions());
  ASSERT_TRUE(carm.ok() && csrm.ok());
  const double carm_cost_rate = carm.value().total_seeding_cost /
                                std::max(1.0, carm.value().total_revenue);
  const double csrm_cost_rate = csrm.value().total_seeding_cost /
                                std::max(1.0, csrm.value().total_revenue);
  EXPECT_LE(csrm_cost_rate, carm_cost_rate + 0.05);
}

TEST(TiGreedyTest, WindowOneDegeneratesTowardCarmChoice) {
  auto f = MakeMedium(2, 30.0);
  TiOptions opt = FastOptions();
  opt.window = 1;
  auto res = RunTiGreedy(*f.instance, [&] {
    TiOptions o = opt;
    o.candidate_rule = CandidateRule::kCoverageCostRatio;
    o.selection_rule = SelectionRule::kMaxRate;
    return o;
  }());
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res.value().allocation.IsDisjoint(f.instance->num_nodes()));
}

TEST(TiGreedyTest, WiderWindowNotGrosslyLessEfficient) {
  // Full window is the true CS rule; tiny window approximates CARM. The
  // greedy rule optimizes the marginal rate of each single pick, not the
  // final aggregate cost/revenue ratio, so under sampling noise the w=1 run
  // can finish a few percent ahead — the invariant worth pinning is that
  // the full window is not grossly less seeding-efficient (same slack as
  // CsrmIsMoreCostEffectiveThanCarm above).
  auto f = MakeMedium(2, 50.0, /*alpha=*/0.5);
  TiOptions w1 = FastOptions(), wfull = FastOptions();
  w1.window = 1;
  wfull.window = 0;
  auto a = RunTiCsrm(*f.instance, w1);
  auto b = RunTiCsrm(*f.instance, wfull);
  ASSERT_TRUE(a.ok() && b.ok());
  const double cost_per_rev_w1 =
      a.value().total_seeding_cost / std::max(1.0, a.value().total_revenue);
  const double cost_per_rev_full =
      b.value().total_seeding_cost / std::max(1.0, b.value().total_revenue);
  EXPECT_LE(cost_per_rev_full, cost_per_rev_w1 + 0.05);
}

TEST(TiGreedyTest, PageRankBaselinesRun) {
  auto f = MakeMedium(2, 30.0);
  auto gr = RunPageRankGr(*f.instance, FastOptions());
  auto rr = RunPageRankRr(*f.instance, FastOptions());
  ASSERT_TRUE(gr.ok());
  ASSERT_TRUE(rr.ok());
  EXPECT_TRUE(gr.value().allocation.IsDisjoint(f.instance->num_nodes()));
  EXPECT_TRUE(rr.value().allocation.IsDisjoint(f.instance->num_nodes()));
  for (uint32_t j = 0; j < 2; ++j) {
    EXPECT_LE(gr.value().ad_stats[j].payment, f.instance->budget(j) + 1e-6);
    EXPECT_LE(rr.value().ad_stats[j].payment, f.instance->budget(j) + 1e-6);
  }
}

TEST(TiGreedyTest, RoundRobinAlternatesAds) {
  auto f = MakeMedium(2, 30.0);
  auto rr = RunPageRankRr(*f.instance, FastOptions());
  ASSERT_TRUE(rr.ok());
  const auto& sets = rr.value().allocation.seed_sets;
  // Round-robin with equal budgets keeps seed counts within 1 of each
  // other (until one ad's budget is exhausted).
  if (!sets[0].empty() && !sets[1].empty()) {
    EXPECT_LE(std::abs(static_cast<int>(sets[0].size()) -
                       static_cast<int>(sets[1].size())),
              2);
  }
}

TEST(TiGreedyTest, LatentSeedSizeGrows) {
  auto f = MakeMedium(1, 200.0);
  auto res = RunTiCarm(*f.instance, FastOptions());
  ASSERT_TRUE(res.ok());
  const auto& st = res.value().ad_stats[0];
  // Started at 1; a 200-budget campaign needs more than one seed, and the
  // Eq. 10 revision must keep s̃ at least one step ahead of |S|.
  // (Sample growth events are not guaranteed HERE because FastOptions'
  // theta_cap already saturates θ(1) on this fixture — the cap-saturated
  // idle path, observable via theta_cap_hits/idle_growth_revisions. The
  // growth-engaged path is ctest-enforced in
  // advertiser_engine_test/GrowthRegimeTest under the same default
  // influence with headroom below the cap.)
  EXPECT_GT(st.seeds, 1u);
  EXPECT_GE(st.latent_seed_size, st.seeds);
  EXPECT_GT(st.theta, 0u);
}

TEST(TiGreedyTest, MaxSeedsCap) {
  auto f = MakeMedium(2, 100.0);
  TiOptions opt = FastOptions();
  opt.max_seeds = 3;
  auto res = RunTiCarm(*f.instance, opt);
  ASSERT_TRUE(res.ok());
  EXPECT_LE(res.value().total_seeds, 3u);
}

TEST(TiGreedyTest, RejectsBadEpsilon) {
  auto f = MakeMedium(1, 10.0);
  TiOptions opt = FastOptions();
  opt.epsilon = 0.0;
  EXPECT_FALSE(RunTiGreedy(*f.instance, opt).ok());
  opt.epsilon = 1.5;
  EXPECT_FALSE(RunTiGreedy(*f.instance, opt).ok());
}

TEST(TiGreedyTest, TinyBudgetGetsFewSeedsButStaysFeasible) {
  auto f = MakeMedium(2, 3.0);
  auto res = RunTiCsrm(*f.instance, FastOptions());
  ASSERT_TRUE(res.ok());
  for (uint32_t j = 0; j < 2; ++j) {
    EXPECT_LE(res.value().ad_stats[j].payment, 3.0 + 1e-6);
  }
}

TEST(TiGreedyTest, RrRevenueTracksMcEvaluation) {
  // The RR-internal revenue estimate should agree with an independent MC
  // evaluation of the final allocation within a loose tolerance.
  auto f = MakeMedium(1, 60.0);
  auto res = RunTiCarm(*f.instance, FastOptions());
  ASSERT_TRUE(res.ok());
  McSpreadOracle oracle(*f.instance, 3000, 123);
  auto eval = EvaluateAllocation(*f.instance, res.value().allocation, oracle);
  ASSERT_TRUE(eval.feasible || eval.total_revenue > 0.0);
  EXPECT_NEAR(eval.total_revenue, res.value().total_revenue,
              0.25 * std::max(1.0, res.value().total_revenue));
}

// Rule-matrix sweep: every (candidate, selection) combination yields a
// feasible, disjoint allocation.
class RuleMatrix
    : public ::testing::TestWithParam<
          std::tuple<CandidateRule, SelectionRule>> {};

TEST_P(RuleMatrix, FeasibleAndDisjoint) {
  auto [cand, sel] = GetParam();
  auto f = MakeMedium(3, 25.0);
  TiOptions opt = FastOptions();
  opt.candidate_rule = cand;
  opt.selection_rule = sel;
  auto res = RunTiGreedy(*f.instance, opt);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res.value().allocation.IsDisjoint(f.instance->num_nodes()));
  for (uint32_t j = 0; j < 3; ++j) {
    EXPECT_LE(res.value().ad_stats[j].payment,
              f.instance->budget(j) + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, RuleMatrix,
    ::testing::Combine(
        ::testing::Values(CandidateRule::kCoverage,
                          CandidateRule::kCoverageCostRatio,
                          CandidateRule::kPageRank),
        ::testing::Values(SelectionRule::kMaxMarginalRevenue,
                          SelectionRule::kMaxRate,
                          SelectionRule::kRoundRobin)));

}  // namespace
}  // namespace isa::core
