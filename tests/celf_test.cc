// CELF lazy-evaluation greedy: must match the scan-based Algorithm 1
// selection while issuing far fewer oracle queries.

#include <gtest/gtest.h>

#include "core/greedy.h"
#include "core/spread_oracle.h"
#include "graph/generators.h"
#include "tests/test_util.h"
#include "topic/tic_model.h"

namespace isa::core {
namespace {

AdvertiserSpec Ad(double cpe, double budget) {
  AdvertiserSpec a;
  a.cpe = cpe;
  a.budget = budget;
  a.gamma = topic::TopicDistribution::Uniform(1);
  return a;
}

test::OwnedInstance StarInstance(double budget, std::vector<double> costs) {
  return test::MakeInstance(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}}, 1.0,
                            {Ad(1.0, budget)}, {std::move(costs)});
}

TEST(CelfTest, MatchesScanOnStar) {
  auto owned = StarInstance(100.0, {2, 1, 1, 1, 1});
  auto o1 = ExactSpreadOracle::Create(*owned.instance);
  auto o2 = ExactSpreadOracle::Create(*owned.instance);
  GreedyOptions plain, lazy;
  lazy.lazy = true;
  auto a = RunGreedy(*owned.instance, *o1.value(), plain);
  auto b = RunGreedy(*owned.instance, *o2.value(), lazy);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().allocation.seed_sets, b.value().allocation.seed_sets);
  EXPECT_DOUBLE_EQ(a.value().total_revenue, b.value().total_revenue);
}

TEST(CelfTest, MatchesScanOnTightnessGadget) {
  for (bool cs : {false, true}) {
    auto owned = test::MakeTightnessGadget();
    auto o1 = ExactSpreadOracle::Create(*owned.instance);
    auto o2 = ExactSpreadOracle::Create(*owned.instance);
    GreedyOptions plain, lazy;
    plain.cost_sensitive = lazy.cost_sensitive = cs;
    lazy.lazy = true;
    auto a = RunGreedy(*owned.instance, *o1.value(), plain);
    auto b = RunGreedy(*owned.instance, *o2.value(), lazy);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_DOUBLE_EQ(a.value().total_revenue, b.value().total_revenue)
        << "cost_sensitive=" << cs;
  }
}

TEST(CelfTest, SavesOracleQueriesOnLargerInstance) {
  auto g = graph::GenerateBarabasiAlbert(
               {.num_nodes = 60, .edges_per_node = 2, .seed = 3})
               .value();
  auto topics = topic::MakeUniform(g, 1, 0.05).value();
  std::vector<double> cost(g.num_nodes(), 0.5);
  auto inst = RmInstance::Create(g, topics, {Ad(1.0, 20.0), Ad(1.0, 20.0)},
                                 {cost, cost})
                  .value();
  McSpreadOracle o1(inst, 300, 5), o2(inst, 300, 5);
  GreedyOptions plain, lazy;
  lazy.lazy = true;
  auto a = RunGreedy(inst, o1, plain);
  auto b = RunGreedy(inst, o2, lazy);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_LT(b.value().oracle_queries, a.value().oracle_queries / 2);
  // Same estimator stream -> comparable quality.
  EXPECT_NEAR(b.value().total_revenue, a.value().total_revenue,
              0.15 * std::max(1.0, a.value().total_revenue));
}

TEST(CelfTest, RespectsBudgetAndMatroid) {
  auto g = graph::GenerateBarabasiAlbert(
               {.num_nodes = 40, .edges_per_node = 2, .seed = 9})
               .value();
  auto topics = topic::MakeUniform(g, 1, 0.1).value();
  std::vector<double> cost(g.num_nodes());
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    cost[u] = 0.3 * (1 + g.OutDegree(u));
  }
  auto inst = RmInstance::Create(g, topics, {Ad(1.5, 10.0), Ad(1.0, 8.0)},
                                 {cost, cost})
                  .value();
  McSpreadOracle oracle(inst, 500, 7);
  GreedyOptions lazy;
  lazy.lazy = true;
  lazy.cost_sensitive = true;
  auto res = RunGreedy(inst, oracle, lazy);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res.value().allocation.IsDisjoint(g.num_nodes()));
  EXPECT_LE(res.value().payment[0], 10.0 + 1e-6);
  EXPECT_LE(res.value().payment[1], 8.0 + 1e-6);
}

TEST(CelfTest, MaxSeedsCap) {
  auto owned = StarInstance(1000.0, {1, 1, 1, 1, 1});
  auto oracle = ExactSpreadOracle::Create(*owned.instance);
  GreedyOptions lazy;
  lazy.lazy = true;
  lazy.max_seeds = 2;
  auto res = RunGreedy(*owned.instance, *oracle.value(), lazy);
  ASSERT_TRUE(res.ok());
  EXPECT_LE(res.value().allocation.TotalSeeds(), 2u);
}

}  // namespace
}  // namespace isa::core
