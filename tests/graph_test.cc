#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "graph/graph.h"
#include "graph/graph_io.h"
#include "graph/stats.h"
#include "tests/test_util.h"

namespace isa::graph {
namespace {

TEST(GraphTest, EmptyGraph) {
  auto g = Graph::FromEdges(0, {});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_nodes(), 0u);
  EXPECT_EQ(g.value().num_edges(), 0u);
}

TEST(GraphTest, BasicAdjacency) {
  Graph g = test::MustGraph(4, {{0, 1}, {0, 2}, {2, 3}, {1, 3}});
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  auto n0 = g.OutNeighbors(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0], 1u);
  EXPECT_EQ(n0[1], 2u);
  EXPECT_EQ(g.OutDegree(3), 0u);
  EXPECT_EQ(g.InDegree(3), 2u);
}

TEST(GraphTest, TransposeConsistent) {
  Graph g = test::MustGraph(5, {{0, 1}, {2, 1}, {3, 1}, {1, 4}, {4, 0}});
  auto in1 = g.InNeighbors(1);
  std::vector<NodeId> sources(in1.begin(), in1.end());
  std::sort(sources.begin(), sources.end());
  EXPECT_EQ(sources, (std::vector<NodeId>{0, 2, 3}));
}

TEST(GraphTest, InEdgeIdsPointToForwardEdges) {
  Graph g = test::MustGraph(4, {{0, 2}, {1, 2}, {3, 2}});
  auto srcs = g.InNeighbors(2);
  auto eids = g.InEdgeIds(2);
  ASSERT_EQ(srcs.size(), 3u);
  for (size_t k = 0; k < srcs.size(); ++k) {
    EXPECT_EQ(g.EdgeSrc(eids[k]), srcs[k]);
    EXPECT_EQ(g.EdgeDst(eids[k]), 2u);
  }
}

TEST(GraphTest, EdgeSrcLookup) {
  Graph g = test::MustGraph(3, {{0, 1}, {0, 2}, {1, 2}});
  EXPECT_EQ(g.EdgeSrc(0), 0u);
  EXPECT_EQ(g.EdgeSrc(1), 0u);
  EXPECT_EQ(g.EdgeSrc(2), 1u);
}

TEST(GraphTest, DropsSelfLoops) {
  Graph g = test::MustGraph(3, {{0, 0}, {0, 1}, {1, 1}, {1, 2}});
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.dropped_self_loops(), 2u);
}

TEST(GraphTest, DropsDuplicates) {
  Graph g = test::MustGraph(3, {{0, 1}, {0, 1}, {0, 1}, {1, 2}});
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.dropped_duplicates(), 2u);
}

TEST(GraphTest, RejectsOutOfRangeEndpoints) {
  EXPECT_FALSE(Graph::FromEdges(2, {{0, 5}}).ok());
  EXPECT_FALSE(Graph::FromEdges(2, {{7, 0}}).ok());
}

TEST(GraphTest, MemoryBytesPositive) {
  Graph g = test::MustGraph(10, {{0, 1}, {1, 2}});
  EXPECT_GT(g.MemoryBytes(), 0u);
}

TEST(GraphTest, IsolatedNodesAllowed) {
  Graph g = test::MustGraph(10, {{0, 1}});
  EXPECT_EQ(g.OutDegree(5), 0u);
  EXPECT_EQ(g.InDegree(5), 0u);
}

// ---------- I/O ----------

TEST(GraphIoTest, TextRoundTrip) {
  Graph g = test::MustGraph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  const std::string path = ::testing::TempDir() + "/isa_g.txt";
  ASSERT_TRUE(SaveEdgeListText(g, path).ok());
  auto loaded = LoadEdgeListText(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_nodes(), 4u);
  EXPECT_EQ(loaded.value().num_edges(), 4u);
  std::remove(path.c_str());
}

TEST(GraphIoTest, TextSkipsCommentsAndCompactsIds) {
  const std::string path = ::testing::TempDir() + "/isa_g2.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("# comment\n100 200\n200 300\n\n100 300\n", f);
    std::fclose(f);
  }
  auto g = LoadEdgeListText(path);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_nodes(), 3u);  // ids compacted to 0..2
  EXPECT_EQ(g.value().num_edges(), 3u);
  std::remove(path.c_str());
}

TEST(GraphIoTest, TextRejectsMalformedLine) {
  const std::string path = ::testing::TempDir() + "/isa_g3.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("1 2\nnot numbers\n", f);
    std::fclose(f);
  }
  auto result = LoadEdgeListText(path);
  ASSERT_FALSE(result.ok());
  // The error names the file and the 1-based offending line.
  EXPECT_NE(result.status().message().find(":2:"), std::string::npos)
      << result.status().message();
  std::remove(path.c_str());
}

TEST(GraphIoTest, TextToleratesCommentsWhitespaceAndDuplicates) {
  const std::string path = ::testing::TempDir() + "/isa_g4.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    // '#' (SNAP) and '%' (KONECT) comments, blank lines, leading and
    // trailing whitespace/tabs, and a duplicate edge.
    std::fputs("% konect header\n# snap header\n\n  0 1  \n1\t2\n0 1\n", f);
    std::fclose(f);
  }
  EdgeListLoadStats stats;
  auto g = LoadEdgeListText(path, &stats);
  ASSERT_TRUE(g.ok()) << g.status().message();
  EXPECT_EQ(g.value().num_nodes(), 3u);
  EXPECT_EQ(g.value().num_edges(), 2u);  // duplicate collapsed
  EXPECT_EQ(g.value().dropped_duplicates(), 1u);
  EXPECT_EQ(stats.lines, 6u);
  EXPECT_EQ(stats.comment_lines, 3u);  // '%', '#', blank
  EXPECT_EQ(stats.edge_lines, 3u);
  std::remove(path.c_str());
}

TEST(GraphIoTest, TextRejectsNegativeIdsWithLineNumber) {
  const std::string path = ::testing::TempDir() + "/isa_g5.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    // istream >> uint64_t would accept -1 by wrapping to 2^64-1; the
    // loader must reject it instead of inventing a huge node id.
    std::fputs("0 1\n1 2\n-1 2\n", f);
    std::fclose(f);
  }
  auto result = LoadEdgeListText(path);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find(":3:"), std::string::npos)
      << result.status().message();
  std::remove(path.c_str());
}

TEST(GraphIoTest, TextRejectsTrailingGarbageWithLineNumber) {
  const std::string path = ::testing::TempDir() + "/isa_g6.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    // A third column means a weighted/attributed format the loader does
    // not understand — silently dropping it would misread the input.
    std::fputs("0 1\n1 2 0.5\n", f);
    std::fclose(f);
  }
  auto result = LoadEdgeListText(path);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find(":2:"), std::string::npos)
      << result.status().message();
  std::remove(path.c_str());
}

TEST(GraphIoTest, TextRejectsMissingField) {
  const std::string path = ::testing::TempDir() + "/isa_g7.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("0 1\n7\n", f);
    std::fclose(f);
  }
  auto result = LoadEdgeListText(path);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find(":2:"), std::string::npos)
      << result.status().message();
  std::remove(path.c_str());
}

TEST(GraphIoTest, MissingFile) {
  EXPECT_FALSE(LoadEdgeListText("/no/such/file").ok());
  EXPECT_FALSE(LoadBinary("/no/such/file").ok());
}

TEST(GraphIoTest, BinaryRoundTrip) {
  Graph g = test::MustGraph(5, {{0, 1}, {1, 2}, {4, 0}, {3, 4}});
  const std::string path = ::testing::TempDir() + "/isa_g.bin";
  ASSERT_TRUE(SaveBinary(g, path).ok());
  auto loaded = LoadBinary(path);
  ASSERT_TRUE(loaded.ok());
  const Graph& g2 = loaded.value();
  ASSERT_EQ(g2.num_nodes(), g.num_nodes());
  ASSERT_EQ(g2.num_edges(), g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto a = g.OutNeighbors(u);
    auto b = g2.OutNeighbors(u);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
  std::remove(path.c_str());
}

TEST(GraphIoTest, BinaryRejectsBadMagic) {
  const std::string path = ::testing::TempDir() + "/isa_bad.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    uint32_t junk[3] = {0xdeadbeef, 2, 1};
    std::fwrite(junk, sizeof(junk), 1, f);
    std::fclose(f);
  }
  EXPECT_FALSE(LoadBinary(path).ok());
  std::remove(path.c_str());
}

// ---------- stats ----------

TEST(GraphStatsTest, BasicCounts) {
  Graph g = test::MustGraph(6, {{0, 1}, {0, 2}, {0, 3}, {4, 0}});
  GraphStats s = ComputeStats(g);
  EXPECT_EQ(s.num_nodes, 6u);
  EXPECT_EQ(s.num_edges, 4u);
  EXPECT_EQ(s.max_out_degree, 3u);
  EXPECT_EQ(s.max_in_degree, 1u);
  EXPECT_EQ(s.num_isolated, 1u);  // node 5
  EXPECT_EQ(s.largest_wcc, 5u);
  EXPECT_FALSE(s.looks_bidirectional);
  EXPECT_NEAR(s.avg_degree, 4.0 / 6.0, 1e-12);
}

TEST(GraphStatsTest, BidirectionalDetection) {
  Graph g = test::MustGraph(3, {{0, 1}, {1, 0}, {1, 2}, {2, 1}});
  EXPECT_TRUE(ComputeStats(g).looks_bidirectional);
}

TEST(GraphStatsTest, TwoComponents) {
  Graph g = test::MustGraph(6, {{0, 1}, {1, 2}, {3, 4}});
  GraphStats s = ComputeStats(g);
  EXPECT_EQ(s.largest_wcc, 3u);
}

TEST(GraphStatsTest, DegreeHistogram) {
  Graph g = test::MustGraph(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}});
  auto hist = OutDegreeHistogram(g, 2);
  // node 0 has degree 3 -> capped bucket 2; node 1 degree 1; nodes 2,3: 0.
  EXPECT_EQ(hist[0], 2u);
  EXPECT_EQ(hist[1], 1u);
  EXPECT_EQ(hist[2], 1u);
}

}  // namespace
}  // namespace isa::graph
