#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/greedy.h"
#include "core/spread_oracle.h"
#include "tests/test_util.h"

namespace isa::core {
namespace {

AdvertiserSpec Ad(double cpe, double budget) {
  AdvertiserSpec a;
  a.cpe = cpe;
  a.budget = budget;
  a.gamma = topic::TopicDistribution::Uniform(1);
  return a;
}

TEST(BruteForceTest, SingleAdStarOptimal) {
  // Star hub reaches everything; ample budget -> optimal includes the hub.
  auto owned = test::MakeInstance(4, {{0, 1}, {0, 2}, {0, 3}}, 1.0,
                                  {Ad(1.0, 100.0)}, {{1, 1, 1, 1}});
  auto oracle = ExactSpreadOracle::Create(*owned.instance);
  ASSERT_TRUE(oracle.ok());
  auto best = SolveOptimal(*owned.instance, *oracle.value());
  ASSERT_TRUE(best.ok());
  EXPECT_DOUBLE_EQ(best.value().total_revenue, 4.0);
  EXPECT_GT(best.value().feasible_count, 0u);
}

TEST(BruteForceTest, BudgetForcesCheaperChoice) {
  // Hub payment = 4 + 10 = 14 > budget 5; two leaves: 2 + 2 = 4 <= 5.
  auto owned = test::MakeInstance(4, {{0, 1}, {0, 2}, {0, 3}}, 1.0,
                                  {Ad(1.0, 5.0)}, {{10, 1, 1, 1}});
  auto oracle = ExactSpreadOracle::Create(*owned.instance);
  ASSERT_TRUE(oracle.ok());
  auto best = SolveOptimal(*owned.instance, *oracle.value());
  ASSERT_TRUE(best.ok());
  // Best feasible: any 2 leaves (revenue 2, payment 4); 3 leaves would pay
  // 3 + 3 = 6 > 5.
  EXPECT_DOUBLE_EQ(best.value().total_revenue, 2.0);
}

TEST(BruteForceTest, TwoAdsSplitNodes) {
  // Two-node graph, two ads with generous budgets: optimum seeds both
  // nodes, one per ad (disjointness).
  auto owned = test::MakeInstance(2, {{0, 1}}, 1.0,
                                  {Ad(1.0, 10.0), Ad(1.0, 10.0)},
                                  {{0.5, 0.5}, {0.5, 0.5}});
  auto oracle = ExactSpreadOracle::Create(*owned.instance);
  ASSERT_TRUE(oracle.ok());
  auto best = SolveOptimal(*owned.instance, *oracle.value());
  ASSERT_TRUE(best.ok());
  // Ad with node 0 gets spread 2, the other gets node 1 with spread 1
  // (or the assignment maximizing total: 2 + 1 = 3).
  EXPECT_DOUBLE_EQ(best.value().total_revenue, 3.0);
  EXPECT_TRUE(best.value().allocation.IsDisjoint(2));
}

TEST(BruteForceTest, GreedyNeverBeatsOptimal) {
  auto owned = test::MakeInstance(
      5, {{0, 1}, {1, 2}, {3, 4}, {3, 1}}, 0.5,
      {Ad(1.5, 6.0), Ad(1.0, 4.0)},
      {{1.0, 0.5, 0.5, 1.0, 0.5}, {0.7, 0.7, 0.7, 0.7, 0.7}});
  auto oracle = ExactSpreadOracle::Create(*owned.instance);
  ASSERT_TRUE(oracle.ok());
  auto best = SolveOptimal(*owned.instance, *oracle.value());
  ASSERT_TRUE(best.ok());
  for (bool cs : {false, true}) {
    GreedyOptions opt;
    opt.cost_sensitive = cs;
    auto res = RunGreedy(*owned.instance, *oracle.value(), opt);
    ASSERT_TRUE(res.ok());
    EXPECT_LE(res.value().total_revenue, best.value().total_revenue + 1e-9);
  }
}

TEST(BruteForceTest, EmptyAllocationFeasibleWhenBudgetsTiny) {
  // Even a single free-incentive seed pays cpe * spread >= 1 > 0.5 budget?
  // cpe = 1, spread >= 1 -> payment >= 1 > 0.5: only the empty allocation
  // is feasible and the optimum is 0.
  auto owned = test::MakeInstance(2, {{0, 1}}, 1.0, {Ad(1.0, 0.5)},
                                  {{0.0, 0.0}});
  auto oracle = ExactSpreadOracle::Create(*owned.instance);
  ASSERT_TRUE(oracle.ok());
  auto best = SolveOptimal(*owned.instance, *oracle.value());
  ASSERT_TRUE(best.ok());
  EXPECT_DOUBLE_EQ(best.value().total_revenue, 0.0);
  EXPECT_EQ(best.value().feasible_count, 1u);  // only the empty allocation
}

TEST(BruteForceTest, RejectsLargeInstance) {
  std::vector<graph::Edge> edges;
  for (graph::NodeId u = 0; u + 1 < 20; ++u) edges.push_back({u, u + 1});
  auto owned = test::MakeInstance(
      20, std::move(edges), 0.5,
      {Ad(1.0, 5.0), Ad(1.0, 5.0), Ad(1.0, 5.0)},
      {std::vector<double>(20, 1.0), std::vector<double>(20, 1.0),
       std::vector<double>(20, 1.0)});
  auto oracle = ExactSpreadOracle::Create(*owned.instance);
  ASSERT_TRUE(oracle.ok());
  EXPECT_FALSE(SolveOptimal(*owned.instance, *oracle.value()).ok());
}

}  // namespace
}  // namespace isa::core
