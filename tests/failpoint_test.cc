// The FailPoints registry: spec-grammar parsing (valid and invalid), the
// three deterministic trigger schedules (Nth hit, every-K, seeded
// probability), payload mapping, first-firing-entry-wins stacking, and
// the TotalFires diagnostic. Everything here is pure registry behavior —
// the instrumented production sites are exercised by the spill/recovery
// and chaos suites.

#include <algorithm>
#include <cerrno>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "gtest/gtest.h"

namespace isa {
namespace {

using Spec = FailPoints::Spec;

// Every test leaves the process-wide registry empty.
struct FailPointGuard {
  FailPointGuard() { FailPoints::Clear(); }
  ~FailPointGuard() { FailPoints::Clear(); }
};

TEST(FailPointTest, ParseValidSpec) {
  auto parsed = FailPoints::Parse(
      "spill.read.eio@3, spill.write.enospc@every:2 ,"
      "pool.alloc.throw@1,async.complete.eof@p:0.25:77,");
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const std::vector<Spec>& specs = parsed.value();
  ASSERT_EQ(specs.size(), 4u);

  EXPECT_EQ(specs[0].site, "spill.read");
  EXPECT_EQ(specs[0].payload, EIO);
  EXPECT_EQ(specs[0].trigger, Spec::Trigger::kNth);
  EXPECT_EQ(specs[0].n, 3u);

  EXPECT_EQ(specs[1].site, "spill.write");
  EXPECT_EQ(specs[1].payload, ENOSPC);
  EXPECT_EQ(specs[1].trigger, Spec::Trigger::kEvery);
  EXPECT_EQ(specs[1].n, 2u);

  EXPECT_EQ(specs[2].site, "pool.alloc");
  EXPECT_EQ(specs[2].payload, kFailPointThrow);

  EXPECT_EQ(specs[3].site, "async.complete");
  EXPECT_EQ(specs[3].payload, kFailPointEof);
  EXPECT_EQ(specs[3].trigger, Spec::Trigger::kProb);
  EXPECT_DOUBLE_EQ(specs[3].p, 0.25);
  EXPECT_EQ(specs[3].seed, 77u);
}

TEST(FailPointTest, ParseEmptySpecIsEmptyList) {
  auto parsed = FailPoints::Parse("");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().empty());
  // Stray commas alone are also fine.
  auto commas = FailPoints::Parse(" , ,");
  ASSERT_TRUE(commas.ok());
  EXPECT_TRUE(commas.value().empty());
}

TEST(FailPointTest, ParseRejectsBadEntries) {
  // One bad entry fails the whole spec, naming the entry.
  for (const char* bad :
       {"spill.read.eio",            // no @trigger
        "spill.read@1",              // no .kind
        ".eio@1",                    // empty site
        "spill.read.@1",             // empty kind
        "spill.read.ebadf@1",        // unknown kind
        "spill.read.eio@0",          // Nth must be >= 1
        "spill.read.eio@x",          // non-numeric trigger
        "spill.read.eio@every:0",    // period must be >= 1
        "spill.read.eio@every:abc",  // non-numeric period
        "spill.read.eio@p:0.5",      // probability without seed
        "spill.read.eio@p:1.5:3",    // probability out of range
        "spill.read.eio@p:0.5:zz",   // non-numeric seed
        "ok.entry.eio@1,spill.read.eio"}) {
    auto parsed = FailPoints::Parse(bad);
    EXPECT_FALSE(parsed.ok()) << bad;
  }
}

TEST(FailPointTest, ArmingBadSpecArmsNothing) {
  FailPointGuard guard;
  EXPECT_FALSE(FailPoints::Arm("x.y.eio@1,broken").ok());
  // The valid leading entry must NOT have been armed.
  EXPECT_EQ(FailPointHit("x.y"), 0);
}

TEST(FailPointTest, NthTriggerFiresExactlyOnce) {
  FailPointGuard guard;
  ASSERT_TRUE(FailPoints::Arm("t.nth.eio@3").ok());
  for (int hit = 1; hit <= 10; ++hit) {
    EXPECT_EQ(FailPointHit("t.nth"), hit == 3 ? EIO : 0) << "hit " << hit;
  }
  // Other sites never tick this entry's counter.
  EXPECT_EQ(FailPointHit("t.other"), 0);
  EXPECT_EQ(FailPoints::TotalFires(), 1u);
}

TEST(FailPointTest, EveryKTriggerFiresPeriodically) {
  FailPointGuard guard;
  ASSERT_TRUE(FailPoints::Arm("t.every.enospc@every:3").ok());
  for (int hit = 1; hit <= 9; ++hit) {
    EXPECT_EQ(FailPointHit("t.every"), hit % 3 == 0 ? ENOSPC : 0)
        << "hit " << hit;
  }
  EXPECT_EQ(FailPoints::TotalFires(), 3u);
}

TEST(FailPointTest, ProbabilityTriggerIsDeterministic) {
  FailPointGuard guard;
  // The same spec must fire at exactly the same hit indices across runs —
  // the property that makes a seeded chaos schedule reproducible.
  std::vector<bool> first, second;
  ASSERT_TRUE(FailPoints::Arm("t.prob.eio@p:0.3:42").ok());
  for (int hit = 0; hit < 200; ++hit) first.push_back(FailPointHit("t.prob"));
  FailPoints::Clear();
  ASSERT_TRUE(FailPoints::Arm("t.prob.eio@p:0.3:42").ok());
  for (int hit = 0; hit < 200; ++hit) second.push_back(FailPointHit("t.prob"));
  EXPECT_EQ(first, second);
  // p ≈ 0.3 should actually fire sometimes and skip sometimes.
  const size_t fires = std::count(first.begin(), first.end(), true);
  EXPECT_GT(fires, 0u);
  EXPECT_LT(fires, first.size());

  // The degenerate probabilities are exact.
  FailPoints::Clear();
  ASSERT_TRUE(FailPoints::Arm("t.always.eio@p:1:1,t.never.eio@p:0:1").ok());
  for (int hit = 0; hit < 50; ++hit) {
    EXPECT_EQ(FailPointHit("t.always"), EIO);
    EXPECT_EQ(FailPointHit("t.never"), 0);
  }
}

TEST(FailPointTest, FirstFiringEntryWinsButAllCount) {
  FailPointGuard guard;
  // Two entries on one site: arm order decides the payload when both fire
  // on the same hit; fires are tallied for both.
  ASSERT_TRUE(FailPoints::Arm("t.stack.eio@every:1").ok());
  ASSERT_TRUE(FailPoints::Arm("t.stack.enospc@every:1").ok());
  EXPECT_EQ(FailPointHit("t.stack"), EIO);
  EXPECT_EQ(FailPoints::TotalFires(), 2u);
}

TEST(FailPointTest, ClearDisarmsEverything) {
  FailPointGuard guard;
  ASSERT_TRUE(FailPoints::Arm("t.clear.eio@every:1").ok());
  EXPECT_EQ(FailPointHit("t.clear"), EIO);
  FailPoints::Clear();
  EXPECT_EQ(FailPointHit("t.clear"), 0);
  EXPECT_EQ(FailPoints::TotalFires(), 0u);
  // Re-arming restarts the hit counter from zero.
  ASSERT_TRUE(FailPoints::Arm("t.clear.eio@2").ok());
  EXPECT_EQ(FailPointHit("t.clear"), 0);
  EXPECT_EQ(FailPointHit("t.clear"), EIO);
}

}  // namespace
}  // namespace isa
