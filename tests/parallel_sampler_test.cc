// Determinism and thread-safety of the parallel RR-set sampling engine
// (rrset/parallel_sampler.h): a fixed seed must yield bit-identical stores
// and bit-identical TI-CSRM allocations at any worker count.

#include "rrset/parallel_sampler.h"

#include <vector>

#include "common/thread_pool.h"
#include "core/ti_greedy.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "rrset/rr_collection.h"
#include "rrset/sample_sizer.h"
#include "tests/test_util.h"
#include "topic/tic_model.h"

namespace isa {
namespace {

using graph::Graph;
using rrset::ParallelSampler;
using rrset::ParallelSamplerOptions;
using rrset::RrStore;

Graph MakeBaGraph(graph::NodeId n = 300) {
  graph::BarabasiAlbertOptions opts;
  opts.num_nodes = n;
  opts.edges_per_node = 3;
  opts.seed = 9;
  auto g = graph::GenerateBarabasiAlbert(opts);
  ISA_CHECK(g.ok());
  return std::move(g).value();
}

ParallelSampler MakeSampler(const Graph& g, std::span<const double> probs,
                            uint32_t threads, uint64_t seed = 123,
                            uint64_t min_sets_per_thread = 1) {
  ParallelSamplerOptions opts;
  opts.num_threads = threads;
  opts.min_sets_per_thread = min_sets_per_thread;
  return ParallelSampler(g, probs, rrset::DiffusionModel::kIndependentCascade,
                         seed, opts);
}

void ExpectStoresIdentical(const RrStore& a, const RrStore& b) {
  ASSERT_EQ(a.num_sets(), b.num_sets());
  for (uint64_t r = 0; r < a.num_sets(); ++r) {
    auto ma = a.SetMembers(r);
    auto mb = b.SetMembers(r);
    ASSERT_EQ(ma.size(), mb.size()) << "set " << r;
    for (size_t k = 0; k < ma.size(); ++k) {
      ASSERT_EQ(ma[k], mb[k]) << "set " << r << " member " << k;
    }
  }
}

TEST(ParallelSamplerTest, StoreBitIdenticalAcrossThreadCounts) {
  const Graph g = MakeBaGraph();
  const std::vector<double> probs(g.num_edges(), 0.1);
  constexpr uint64_t kSets = 4000;

  RrStore reference(g.num_nodes());
  MakeSampler(g, probs, /*threads=*/1).SampleAppend(reference, kSets);
  EXPECT_EQ(reference.num_sets(), kSets);

  for (uint32_t threads : {2u, 8u}) {
    RrStore store(g.num_nodes());
    MakeSampler(g, probs, threads).SampleAppend(store, kSets);
    SCOPED_TRACE(testing::Message() << threads << " threads");
    ExpectStoresIdentical(reference, store);
  }
}

TEST(ParallelSamplerTest, IncrementalGrowthMatchesOneBatch) {
  const Graph g = MakeBaGraph();
  const std::vector<double> probs(g.num_edges(), 0.1);

  RrStore one_batch(g.num_nodes());
  MakeSampler(g, probs, /*threads=*/4).SampleAppend(one_batch, 3000);

  // Growing in uneven increments (as Algorithm 2's θ revisions do) must
  // continue the per-id substream sequence exactly.
  RrStore grown(g.num_nodes());
  ParallelSampler sampler = MakeSampler(g, probs, /*threads=*/3);
  for (uint64_t inc : {1ull, 7ull, 992ull, 1500ull, 500ull}) {
    sampler.SampleAppend(grown, inc);
  }
  ExpectStoresIdentical(one_batch, grown);
}

TEST(ParallelSamplerTest, LinearThresholdModelIsDeterministicToo) {
  const Graph g = MakeBaGraph();
  // Weighted-cascade LT weights: 1/in-degree, Σ in-weights = 1.
  std::vector<double> probs(g.num_edges(), 0.0);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    auto eids = g.InEdgeIds(v);
    for (uint32_t eid : eids) {
      probs[eid] = 1.0 / static_cast<double>(eids.size());
    }
  }
  auto sample = [&](uint32_t threads) {
    RrStore store(g.num_nodes());
    ParallelSamplerOptions opts;
    opts.num_threads = threads;
    opts.min_sets_per_thread = 1;
    ParallelSampler sampler(g, probs,
                            rrset::DiffusionModel::kLinearThreshold, 77, opts);
    sampler.SampleAppend(store, 2000);
    return store;
  };
  const RrStore reference = sample(1);
  const RrStore parallel = sample(8);
  ExpectStoresIdentical(reference, parallel);
}

TEST(ParallelSamplerTest, CollectionAddSetsAdoptsParallelSamples) {
  const Graph g = MakeBaGraph();
  const std::vector<double> probs(g.num_edges(), 0.1);

  rrset::RrCollection serial(g.num_nodes());
  ParallelSampler s1 = MakeSampler(g, probs, /*threads=*/1);
  serial.AddSets(s1, 2500, {});

  rrset::RrCollection parallel(g.num_nodes());
  ParallelSampler s8 = MakeSampler(g, probs, /*threads=*/8);
  parallel.AddSets(s8, 2500, {});

  ASSERT_EQ(serial.total_sets(), parallel.total_sets());
  ExpectStoresIdentical(*serial.store(), *parallel.store());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_EQ(serial.CoverageOf(v), parallel.CoverageOf(v)) << "node " << v;
  }
}

TEST(ParallelSamplerTest, BorrowedPoolMatchesOwnedPool) {
  const Graph g = MakeBaGraph();
  const std::vector<double> probs(g.num_edges(), 0.1);
  constexpr uint64_t kSets = 3000;

  RrStore own_pool(g.num_nodes());
  MakeSampler(g, probs, /*threads=*/4).SampleAppend(own_pool, kSets);

  ThreadPool shared(4);
  ParallelSamplerOptions opts;
  opts.num_threads = 4;
  opts.min_sets_per_thread = 1;
  opts.pool = &shared;
  ParallelSampler borrowed(g, probs,
                           rrset::DiffusionModel::kIndependentCascade, 123,
                           opts);
  RrStore shared_pool_store(g.num_nodes());
  borrowed.SampleAppend(shared_pool_store, kSets);
  EXPECT_EQ(borrowed.pool(), &shared);
  ExpectStoresIdentical(own_pool, shared_pool_store);
}

TEST(ParallelSamplerTest, PilotWidthsIdenticalSerialAndParallel) {
  const Graph g = MakeBaGraph(400);
  const std::vector<double> probs(g.num_edges(), 0.08);

  rrset::SampleSizerOptions base;
  base.seed = 99;
  base.epsilon = 0.2;
  rrset::SampleSizer serial(g, probs, base);
  ASSERT_GT(serial.pilot_sets(), 0u);

  for (uint32_t threads : {2u, 8u}) {
    ThreadPool pool(threads);
    rrset::SampleSizerOptions opt = base;
    opt.pool = &pool;
    opt.min_pilot_sets_per_task = 1;
    rrset::SampleSizer parallel(g, probs, opt);
    SCOPED_TRACE(testing::Message() << threads << " threads");
    EXPECT_EQ(serial.pilot_sets(), parallel.pilot_sets());
    EXPECT_EQ(serial.pilot_converged(), parallel.pilot_converged());
    EXPECT_DOUBLE_EQ(serial.kpt(), parallel.kpt());
    EXPECT_DOUBLE_EQ(serial.OptLowerBound(), parallel.OptLowerBound());
    for (uint64_t s : {1ull, 2ull, 5ull, 20ull}) {
      EXPECT_EQ(serial.ThetaFor(s), parallel.ThetaFor(s)) << "s=" << s;
    }
  }
}

TEST(ParallelSamplerTest, TiCsrmAllocationInvariantAcrossThreadCounts) {
  const Graph g = MakeBaGraph(200);
  auto topics = topic::MakeUniform(g, 1, 0.08);
  ISA_CHECK(topics.ok());

  std::vector<core::AdvertiserSpec> ads(2);
  ads[0].cpe = 1.0;
  ads[0].budget = 40.0;
  ads[1].cpe = 0.7;
  ads[1].budget = 25.0;
  for (auto& ad : ads) ad.gamma = topic::TopicDistribution::Uniform(1);
  std::vector<std::vector<double>> incentives(
      2, std::vector<double>(g.num_nodes(), 1.0));
  auto inst = core::RmInstance::Create(g, topics.value(), std::move(ads),
                                       std::move(incentives));
  ISA_CHECK(inst.ok());

  core::TiOptions options;
  options.epsilon = 0.3;
  options.seed = 4242;
  options.theta_cap = 30'000;

  std::vector<std::vector<graph::NodeId>> reference;
  for (uint32_t threads : {1u, 2u, 8u}) {
    options.num_threads = threads;
    auto result = core::RunTiCsrm(inst.value(), options);
    ASSERT_TRUE(result.ok()) << result.status().message();
    const auto& seed_sets = result.value().allocation.seed_sets;
    ASSERT_FALSE(seed_sets.empty());
    if (threads == 1u) {
      reference = seed_sets;
      // The run must actually select something, or the test is vacuous.
      EXPECT_GT(result.value().total_seeds, 0u);
    } else {
      EXPECT_EQ(reference, seed_sets) << threads << " threads";
    }
  }
}

// Full-driver determinism: for every candidate rule (and both window
// shapes of Algorithm 5), a fixed seed must yield a bit-identical TiResult
// — allocations, revenue, payments, θ — at 1, 2 and 8 threads, parallel
// advertiser init and pilot included.
TEST(ParallelSamplerTest, TiResultBitIdenticalAcrossThreadCountsAllRules) {
  const Graph g = MakeBaGraph(200);
  auto topics = topic::MakeUniform(g, 1, 0.08);
  ISA_CHECK(topics.ok());

  std::vector<core::AdvertiserSpec> ads(3);
  ads[0].cpe = 1.0;
  ads[0].budget = 40.0;
  ads[1].cpe = 0.7;
  ads[1].budget = 25.0;
  ads[2].cpe = 1.3;
  ads[2].budget = 30.0;
  for (auto& ad : ads) ad.gamma = topic::TopicDistribution::Uniform(1);
  std::vector<std::vector<double>> incentives(
      3, std::vector<double>(g.num_nodes(), 1.0));
  auto inst = core::RmInstance::Create(g, topics.value(), std::move(ads),
                                       std::move(incentives));
  ISA_CHECK(inst.ok());

  struct Config {
    const char* name;
    core::CandidateRule rule;
    core::SelectionRule sel;
    uint32_t window;
    bool share_samples;
  };
  const Config configs[] = {
      {"coverage", core::CandidateRule::kCoverage,
       core::SelectionRule::kMaxMarginalRevenue, 0, false},
      {"ratio-full", core::CandidateRule::kCoverageCostRatio,
       core::SelectionRule::kMaxRate, 0, false},
      {"ratio-window", core::CandidateRule::kCoverageCostRatio,
       core::SelectionRule::kMaxRate, 8, false},
      {"pagerank", core::CandidateRule::kPageRank,
       core::SelectionRule::kMaxMarginalRevenue, 0, false},
      {"ratio-shared", core::CandidateRule::kCoverageCostRatio,
       core::SelectionRule::kMaxRate, 0, true},
  };

  for (const Config& cfg : configs) {
    SCOPED_TRACE(cfg.name);
    core::TiOptions options;
    options.candidate_rule = cfg.rule;
    options.selection_rule = cfg.sel;
    options.window = cfg.window;
    options.share_samples = cfg.share_samples;
    options.epsilon = 0.3;
    options.seed = 1234;
    options.theta_cap = 20'000;

    core::TiResult reference;
    for (uint32_t threads : {1u, 2u, 8u}) {
      SCOPED_TRACE(testing::Message() << threads << " threads");
      options.num_threads = threads;
      auto result = core::RunTiGreedy(inst.value(), options);
      ASSERT_TRUE(result.ok()) << result.status().message();
      const core::TiResult& r = result.value();
      if (threads == 1u) {
        reference = r;
        EXPECT_GT(r.total_seeds, 0u);
        continue;
      }
      EXPECT_EQ(reference.allocation.seed_sets, r.allocation.seed_sets);
      EXPECT_EQ(reference.total_revenue, r.total_revenue);        // bitwise
      EXPECT_EQ(reference.total_seeding_cost, r.total_seeding_cost);
      EXPECT_EQ(reference.total_seeds, r.total_seeds);
      EXPECT_EQ(reference.total_theta, r.total_theta);
      ASSERT_EQ(reference.ad_stats.size(), r.ad_stats.size());
      for (size_t j = 0; j < r.ad_stats.size(); ++j) {
        SCOPED_TRACE(testing::Message() << "ad " << j);
        EXPECT_EQ(reference.ad_stats[j].theta, r.ad_stats[j].theta);
        EXPECT_EQ(reference.ad_stats[j].latent_seed_size,
                  r.ad_stats[j].latent_seed_size);
        EXPECT_EQ(reference.ad_stats[j].revenue, r.ad_stats[j].revenue);
        EXPECT_EQ(reference.ad_stats[j].payment, r.ad_stats[j].payment);
        EXPECT_EQ(reference.ad_stats[j].seeding_cost,
                  r.ad_stats[j].seeding_cost);
      }
    }
  }
}

// Stress for TSan: a large batch through a shared pool drives the sharded
// sampling, the parallel counting-sort index build, and the sharded
// coverage adoption all at once; the serial rerun cross-checks the result.
TEST(ParallelSamplerTest, StressSharedPoolLargeBatchWithParallelIndex) {
  const Graph g = MakeBaGraph(500);
  const std::vector<double> probs(g.num_edges(), 0.2);
  constexpr uint64_t kSets = 30'000;  // enough postings for the sharded paths

  ThreadPool pool(8);
  ParallelSamplerOptions opts;
  opts.num_threads = 8;
  opts.min_sets_per_thread = 1;
  opts.pool = &pool;
  ParallelSampler sampler(g, probs,
                          rrset::DiffusionModel::kIndependentCascade, 555,
                          opts);
  rrset::RrCollection parallel(g.num_nodes());
  parallel.AddSets(sampler, kSets, {});

  rrset::RrCollection serial(g.num_nodes());
  ParallelSampler s1 = MakeSampler(g, probs, /*threads=*/1, 555);
  serial.AddSets(s1, kSets, {});

  ExpectStoresIdentical(*serial.store(), *parallel.store());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_EQ(serial.CoverageOf(v), parallel.CoverageOf(v)) << "node " << v;
  }
  EXPECT_EQ(serial.store()->SetsContaining(0), parallel.store()->SetsContaining(0));
}

// Stress case for ThreadSanitizer builds: hammer one sampler with many
// small multi-worker batches so shard hand-off and merge run thousands of
// times. Assertions are deliberately light — under TSan the value of this
// test is the absence of reported races.
TEST(ParallelSamplerTest, StressManySmallBatches) {
  const Graph g = MakeBaGraph(120);
  const std::vector<double> probs(g.num_edges(), 0.15);
  RrStore store(g.num_nodes());
  ParallelSampler sampler = MakeSampler(g, probs, /*threads=*/8, 31337);
  uint64_t expected = 0;
  for (int round = 0; round < 200; ++round) {
    const uint64_t batch = 1 + (round % 17);
    sampler.SampleAppend(store, batch);
    expected += batch;
  }
  EXPECT_EQ(store.num_sets(), expected);
  // Every stored set must be non-empty (each contains at least its root).
  for (uint64_t r = 0; r < store.num_sets(); ++r) {
    ASSERT_FALSE(store.SetMembers(r).empty()) << "set " << r;
  }
}

}  // namespace
}  // namespace isa
