#include <gtest/gtest.h>

#include "common/flags.h"

namespace isa {
namespace {

Flags MustParse(std::vector<const char*> argv,
                std::vector<std::string> known) {
  argv.insert(argv.begin(), "prog");
  auto parsed = Flags::Parse(static_cast<int>(argv.size()), argv.data(),
                             known);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return std::move(parsed).value();
}

TEST(FlagsTest, EqualsAndSpaceSyntax) {
  auto flags = MustParse({"--alpha=0.5", "--ads", "7"}, {"alpha", "ads"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("alpha", 0).value(), 0.5);
  EXPECT_EQ(flags.GetInt("ads", 0).value(), 7);
}

TEST(FlagsTest, BareBooleanFlag) {
  auto flags = MustParse({"--validate", "--alpha=1"}, {"validate", "alpha"});
  EXPECT_TRUE(flags.GetBool("validate", false).value());
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  auto flags = MustParse({}, {"x"});
  EXPECT_EQ(flags.GetInt("x", 42).value(), 42);
  EXPECT_EQ(flags.GetString("x", "d").value(), "d");
  EXPECT_FALSE(flags.GetBool("x", false).value());
  EXPECT_FALSE(flags.Has("x"));
}

TEST(FlagsTest, UnknownFlagRejected) {
  const char* argv[] = {"prog", "--tpyo=1"};
  EXPECT_FALSE(Flags::Parse(2, argv, {"typo"}).ok());
}

TEST(FlagsTest, MalformedValueRejected) {
  auto flags = MustParse({"--n=abc", "--b=maybe"}, {"n", "b"});
  EXPECT_FALSE(flags.GetInt("n", 0).ok());
  EXPECT_FALSE(flags.GetBool("b", false).ok());
}

TEST(FlagsTest, PositionalsCollected) {
  auto flags = MustParse({"input.txt", "--x=1", "out.csv"}, {"x"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.txt");
  EXPECT_EQ(flags.positional()[1], "out.csv");
}

TEST(FlagsTest, BoolAcceptsNumericForms) {
  auto flags = MustParse({"--a=1", "--b=0"}, {"a", "b"});
  EXPECT_TRUE(flags.GetBool("a", false).value());
  EXPECT_FALSE(flags.GetBool("b", true).value());
}

}  // namespace
}  // namespace isa
