// The staged selection engine (core/advertiser_engine.h +
// core/selection_scheduler.h): incremental lazy-heap repair must agree
// with a from-scratch rebuild after arbitrary adopt/remove sequences, the
// coverage-delta reporting must match brute-force diffs, and async
// θ-growth must preserve the hard invariant — fixed seed ⇒ bit-identical
// TiResult at any thread count.

#include "core/advertiser_engine.h"

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/selection_scheduler.h"
#include "core/ti_greedy.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "rrset/parallel_sampler.h"
#include "rrset/rr_collection.h"
#include "tests/test_util.h"
#include "topic/tic_model.h"

namespace isa::core {
namespace {

using graph::Graph;
using rrset::ParallelSampler;
using rrset::ParallelSamplerOptions;

Graph MakeBaGraph(graph::NodeId n = 250, uint64_t seed = 9) {
  graph::BarabasiAlbertOptions opts;
  opts.num_nodes = n;
  opts.edges_per_node = 3;
  opts.seed = seed;
  auto g = graph::GenerateBarabasiAlbert(opts);
  ISA_CHECK(g.ok());
  return std::move(g).value();
}

ParallelSampler MakeSampler(const Graph& g, std::span<const double> probs,
                            uint64_t seed = 321) {
  ParallelSamplerOptions opts;
  opts.num_threads = 1;
  return ParallelSampler(g, probs, rrset::DiffusionModel::kIndependentCascade,
                         seed, opts);
}

// Brute-force expected delta: nodes whose coverage changed between two
// snapshots, ascending.
std::vector<graph::NodeId> CoverageDiff(const std::vector<uint32_t>& before,
                                        const rrset::RrCollection& col) {
  std::vector<graph::NodeId> out;
  for (graph::NodeId v = 0; v < before.size(); ++v) {
    if (col.CoverageOf(v) != before[v]) out.push_back(v);
  }
  return out;
}

std::vector<uint32_t> CoverageSnapshot(const rrset::RrCollection& col,
                                       graph::NodeId n) {
  std::vector<uint32_t> cov(n);
  for (graph::NodeId v = 0; v < n; ++v) cov[v] = col.CoverageOf(v);
  return cov;
}

TEST(CoverageDeltaTest, AdoptionReportsExactlyTheIncreasedNodes) {
  const Graph g = MakeBaGraph();
  const std::vector<double> probs(g.num_edges(), 0.1);
  ParallelSampler sampler = MakeSampler(g, probs);
  rrset::RrCollection col(g.num_nodes());

  std::vector<graph::NodeId> touched;
  std::vector<graph::NodeId> seeds;
  for (uint64_t batch : {400ull, 1ull, 37ull, 900ull}) {
    const auto before = CoverageSnapshot(col, g.num_nodes());
    col.AddSets(sampler, batch, seeds, &touched);
    EXPECT_TRUE(std::is_sorted(touched.begin(), touched.end()));
    EXPECT_EQ(touched, CoverageDiff(before, col)) << "batch " << batch;
    // Seed a node so later adoptions also exercise the covered-on-adopt
    // path (covered sets must not contribute deltas).
    if (seeds.empty()) seeds.push_back(touched.front());
  }
}

TEST(CoverageDeltaTest, RemovalReportsExactlyTheDecreasedNodes) {
  const Graph g = MakeBaGraph();
  const std::vector<double> probs(g.num_edges(), 0.12);
  ParallelSampler sampler = MakeSampler(g, probs);
  rrset::RrCollection col(g.num_nodes());
  col.AddSets(sampler, 1500, {});

  Rng rng(77);
  std::vector<graph::NodeId> touched;
  for (int i = 0; i < 20; ++i) {
    const graph::NodeId v =
        static_cast<graph::NodeId>(rng.NextBounded(g.num_nodes()));
    const auto before = CoverageSnapshot(col, g.num_nodes());
    const uint32_t removed = col.RemoveCoveredBy(v, &touched);
    EXPECT_TRUE(std::is_sorted(touched.begin(), touched.end()));
    EXPECT_EQ(touched, CoverageDiff(before, col)) << "pick " << i;
    if (removed == 0) EXPECT_TRUE(touched.empty());
  }
}

TEST(CoverageDeltaTest, ShardedAdoptionDeltasMatchSerial) {
  const Graph g = MakeBaGraph(400);
  const std::vector<double> probs(g.num_edges(), 0.2);
  constexpr uint64_t kSets = 30'000;  // enough postings to shard adoption

  rrset::RrCollection serial(g.num_nodes());
  std::vector<graph::NodeId> serial_touched;
  ParallelSampler s1 = MakeSampler(g, probs, 555);
  serial.AddSets(s1, kSets, {}, &serial_touched);

  ThreadPool pool(8);
  ParallelSamplerOptions opts;
  opts.num_threads = 8;
  opts.min_sets_per_thread = 1;
  opts.pool = &pool;
  ParallelSampler s8(g, probs, rrset::DiffusionModel::kIndependentCascade,
                     555, opts);
  rrset::RrCollection parallel(g.num_nodes());
  std::vector<graph::NodeId> parallel_touched;
  parallel.AddSets(s8, kSets, {}, &parallel_touched);

  EXPECT_EQ(serial_touched, parallel_touched);
}

// Randomized adopt/remove sequences: after every operation, the settled
// top of the incrementally repaired heap must equal the settled top of a
// heap rebuilt from scratch — for both key shapes.
class HeapRepairCrossCheck : public ::testing::TestWithParam<bool> {};

TEST_P(HeapRepairCrossCheck, IncrementalMatchesRebuildTop) {
  const bool ratio_keyed = GetParam();
  const Graph g = MakeBaGraph(300, 11);
  const std::vector<double> probs(g.num_edges(), 0.1);
  std::vector<double> costs(g.num_nodes());
  Rng cost_rng(5);
  for (double& c : costs) c = 0.5 + 2.0 * cost_rng.NextDouble();
  costs[7] = 0.0;  // exercise the zero-cost cross-multiplied compare

  ParallelSampler sampler = MakeSampler(g, probs, 99);
  rrset::RrCollection col(g.num_nodes());
  std::vector<uint8_t> eligible(g.num_nodes(), 1);

  CoverageHeap inc;
  inc.Configure(ratio_keyed, costs);
  std::vector<graph::NodeId> touched;
  col.AddSets(sampler, 600, {}, &touched);
  inc.Rebuild(col, eligible);

  std::vector<graph::NodeId> seeds;
  Rng rng(1234);
  for (int op = 0; op < 60; ++op) {
    if (rng.NextBounded(3) == 0) {
      // Growth: adopt a batch and repair incrementally.
      col.AddSets(sampler, 50 + rng.NextBounded(400), seeds, &touched);
      inc.ApplyCoverageIncreases(col, eligible, touched);
    } else {
      // Selection: retire a node and remove its covered sets (coverage
      // only decreases — the lazy heap absorbs it without repair).
      const graph::NodeId v =
          static_cast<graph::NodeId>(rng.NextBounded(g.num_nodes()));
      if (!eligible[v]) continue;
      eligible[v] = 0;
      seeds.push_back(v);
      col.RemoveCoveredBy(v);
    }
    CoverageHeap fresh;
    fresh.Configure(ratio_keyed, costs);
    fresh.Rebuild(col, eligible);
    const bool inc_has = inc.SettleTop(col, eligible);
    const bool fresh_has = fresh.SettleTop(col, eligible);
    ASSERT_EQ(inc_has, fresh_has) << "op " << op;
    if (!inc_has) continue;
    EXPECT_EQ(inc.Top().node, fresh.Top().node) << "op " << op;
    EXPECT_EQ(inc.Top().cov, fresh.Top().cov) << "op " << op;
  }
}

INSTANTIATE_TEST_SUITE_P(BothKeys, HeapRepairCrossCheck,
                         ::testing::Values(false, true));

// ---- Async θ-growth determinism. ----

// High-influence fixture: at p = 0.8 the KPT pilot converges with a large
// OPT lower bound, so θ(1) is small and θ(s̃) grows cheaply as Eq. 10
// revises s̃ upward — several growth events per fast run (see
// GrowthEventsActuallyHappen), which is what puts the async barrier and
// the incremental heap repair on the hot path. Since the Eq. 8 schedule
// fix, growth engages under default influence as well (the
// DefaultInfluenceFixture below); this fixture stays as the cheap
// determinism workhorse.
struct AsyncFixture {
  Graph g = MakeBaGraph(150, 9);
  std::unique_ptr<RmInstance> instance;

  AsyncFixture() {
    auto topics = topic::MakeUniform(g, 1, 0.8);
    ISA_CHECK(topics.ok());
    std::vector<AdvertiserSpec> ads(3);
    ads[0].cpe = 0.2;
    ads[0].budget = 30.0;
    ads[1].cpe = 0.15;
    ads[1].budget = 25.0;
    ads[2].cpe = 0.25;
    ads[2].budget = 35.0;
    for (auto& ad : ads) ad.gamma = topic::TopicDistribution::Uniform(1);
    std::vector<std::vector<double>> incentives(
        3, std::vector<double>(g.num_nodes(), 1.0));
    auto inst = RmInstance::Create(g, topics.value(), std::move(ads),
                                   std::move(incentives));
    ISA_CHECK(inst.ok());
    instance = std::make_unique<RmInstance>(std::move(inst).value());
  }
};

void ExpectTiResultsIdentical(const TiResult& a, const TiResult& b) {
  EXPECT_EQ(a.allocation.seed_sets, b.allocation.seed_sets);
  EXPECT_EQ(a.total_revenue, b.total_revenue);  // bitwise
  EXPECT_EQ(a.total_seeding_cost, b.total_seeding_cost);
  EXPECT_EQ(a.total_seeds, b.total_seeds);
  EXPECT_EQ(a.total_theta, b.total_theta);
  // The θ-schedule observability counters are part of the determinism
  // contract too: they depend only on the pilot and the selection
  // trajectory, never on timing.
  EXPECT_EQ(a.total_growth_events, b.total_growth_events);
  EXPECT_EQ(a.ads_growth_engaged, b.ads_growth_engaged);
  EXPECT_EQ(a.ads_growth_idle, b.ads_growth_idle);
  EXPECT_EQ(a.total_theta_cap_hits, b.total_theta_cap_hits);
  ASSERT_EQ(a.ad_stats.size(), b.ad_stats.size());
  for (size_t j = 0; j < a.ad_stats.size(); ++j) {
    SCOPED_TRACE(testing::Message() << "ad " << j);
    EXPECT_EQ(a.ad_stats[j].theta, b.ad_stats[j].theta);
    EXPECT_EQ(a.ad_stats[j].latent_seed_size, b.ad_stats[j].latent_seed_size);
    EXPECT_EQ(a.ad_stats[j].revenue, b.ad_stats[j].revenue);
    EXPECT_EQ(a.ad_stats[j].payment, b.ad_stats[j].payment);
    EXPECT_EQ(a.ad_stats[j].seeding_cost, b.ad_stats[j].seeding_cost);
    EXPECT_EQ(a.ad_stats[j].sample_growth_events,
              b.ad_stats[j].sample_growth_events);
    EXPECT_EQ(a.ad_stats[j].idle_growth_revisions,
              b.ad_stats[j].idle_growth_revisions);
    EXPECT_EQ(a.ad_stats[j].theta_cap_hits, b.ad_stats[j].theta_cap_hits);
    EXPECT_EQ(a.ad_stats[j].kpt_lower_bound, b.ad_stats[j].kpt_lower_bound);
    EXPECT_EQ(a.ad_stats[j].pilot_sets, b.ad_stats[j].pilot_sets);
    EXPECT_EQ(a.ad_stats[j].pilot_converged, b.ad_stats[j].pilot_converged);
  }
}

// For every candidate rule (and both window shapes of Algorithm 5), async
// growth ON and OFF must each yield a bit-identical TiResult at 1, 2 and 8
// threads — the adoption barrier is keyed by round index and ad order,
// never by timing.
TEST(AsyncGrowthTest, TiResultBitIdenticalAcrossThreadCountsAllRules) {
  AsyncFixture f;
  struct Config {
    const char* name;
    CandidateRule rule;
    SelectionRule sel;
    uint32_t window;
    bool share_samples;
  };
  const Config configs[] = {
      {"coverage", CandidateRule::kCoverage,
       SelectionRule::kMaxMarginalRevenue, 0, false},
      {"ratio-full", CandidateRule::kCoverageCostRatio,
       SelectionRule::kMaxRate, 0, false},
      {"ratio-window", CandidateRule::kCoverageCostRatio,
       SelectionRule::kMaxRate, 8, false},
      {"pagerank", CandidateRule::kPageRank,
       SelectionRule::kMaxMarginalRevenue, 0, false},
      {"ratio-shared", CandidateRule::kCoverageCostRatio,
       SelectionRule::kMaxRate, 0, true},
  };

  for (const bool async : {false, true}) {
    for (const Config& cfg : configs) {
      SCOPED_TRACE(testing::Message()
                   << cfg.name << (async ? " async" : " sync"));
      TiOptions options;
      options.candidate_rule = cfg.rule;
      options.selection_rule = cfg.sel;
      options.window = cfg.window;
      options.share_samples = cfg.share_samples;
      options.async_growth = async;
      options.growth_delay_rounds = 2;
      options.epsilon = 0.3;
      options.seed = 1234;
      options.theta_cap = 200'000;

      TiResult reference;
      for (uint32_t threads : {1u, 2u, 8u}) {
        SCOPED_TRACE(testing::Message() << threads << " threads");
        options.num_threads = threads;
        auto result = RunTiGreedy(*f.instance, options);
        ASSERT_TRUE(result.ok()) << result.status().message();
        if (threads == 1u) {
          reference = result.value();
          EXPECT_GT(reference.total_seeds, 0u);
          continue;
        }
        ExpectTiResultsIdentical(reference, result.value());
      }
    }
  }
}

// The overlap must actually engage on this fixture (growth events > 0), or
// the determinism sweep above is vacuous.
TEST(AsyncGrowthTest, GrowthEventsActuallyHappen) {
  AsyncFixture f;
  TiOptions options;
  options.epsilon = 0.3;
  options.seed = 1234;
  options.theta_cap = 200'000;
  options.async_growth = true;
  auto res = RunTiCsrm(*f.instance, options);
  ASSERT_TRUE(res.ok());
  uint64_t events = 0;
  for (const auto& st : res.value().ad_stats) events += st.sample_growth_events;
  EXPECT_GT(events, 0u);
}

// Async growth is a schedule change, not an estimator change: the run must
// stay feasible and produce a disjoint allocation under every delay.
TEST(AsyncGrowthTest, FeasibleAndDisjointAcrossDelays) {
  AsyncFixture f;
  for (uint32_t delay : {1u, 2u, 5u, 64u}) {
    SCOPED_TRACE(testing::Message() << "delay " << delay);
    TiOptions options;
    options.epsilon = 0.3;
    options.seed = 77;
    options.theta_cap = 200'000;
    options.async_growth = true;
    options.growth_delay_rounds = delay;
    auto res = RunTiCsrm(*f.instance, options);
    ASSERT_TRUE(res.ok());
    EXPECT_TRUE(res.value().allocation.IsDisjoint(f.instance->num_nodes()));
    for (uint32_t j = 0; j < f.instance->num_ads(); ++j) {
      EXPECT_LE(res.value().ad_stats[j].payment,
                f.instance->budget(j) + 1e-6);
    }
  }
}

// ---- θ-growth under DEFAULT influence (the Eq. 8 schedule fix). ----

// Weighted-cascade probabilities — the paper's default regime, nothing
// inflated. Before the schedule fix (per-s KPT re-evaluation + OPT_s >= s
// floor) θ(s̃) was non-increasing here and the growth machinery idled; the
// paper-faithful schedule (one pilot scalar, growing λ(s) numerator) must
// make it engage. ε and theta_cap are chosen so θ(1) sits well under the
// cap, leaving headroom for several Eq. 10 revisions to grow into.
struct DefaultInfluenceFixture {
  Graph g = MakeBaGraph(100, 17);
  std::unique_ptr<RmInstance> instance;

  DefaultInfluenceFixture() {
    auto topics = topic::MakeWeightedCascade(g, 1);
    ISA_CHECK(topics.ok());
    std::vector<AdvertiserSpec> ads(2);
    ads[0].cpe = 0.2;
    ads[0].budget = 15.0;
    ads[1].cpe = 0.15;
    ads[1].budget = 12.0;
    for (auto& ad : ads) ad.gamma = topic::TopicDistribution::Uniform(1);
    std::vector<std::vector<double>> incentives(
        2, std::vector<double>(g.num_nodes(), 1.0));
    auto inst = RmInstance::Create(g, topics.value(), std::move(ads),
                                   std::move(incentives));
    ISA_CHECK(inst.ok());
    instance = std::make_unique<RmInstance>(std::move(inst).value());
  }

  TiOptions Options(bool async) const {
    TiOptions options;
    options.epsilon = 0.5;
    options.seed = 99;
    options.theta_cap = 150'000;
    options.async_growth = async;
    return options;
  }
};

// The acceptance gate for the schedule fix: growth adoptions happen (sync
// and async alike) in the default-influence regime, and the sample really
// is larger than anything a non-growing schedule would have drawn.
TEST(GrowthRegimeTest, ThetaGrowthEngagesUnderDefaultInfluence) {
  DefaultInfluenceFixture f;
  for (const bool async : {false, true}) {
    SCOPED_TRACE(async ? "async" : "sync");
    auto res = RunTiCsrm(*f.instance, f.Options(async));
    ASSERT_TRUE(res.ok()) << res.status().message();
    const TiResult& r = res.value();
    EXPECT_GT(r.total_growth_events, 0u);
    EXPECT_GT(r.ads_growth_engaged, 0u);
    // An engaged ad's final θ must exceed its start-of-run θ(1): the
    // growth events actually enlarged the sample. θ(1) is reproduced from
    // the instance with the run's own sizer parameters.
    for (uint32_t j = 0; j < r.ad_stats.size(); ++j) {
      const TiAdStats& st = r.ad_stats[j];
      if (st.sample_growth_events == 0) continue;
      rrset::SampleSizerOptions so;
      so.epsilon = 0.5;
      so.theta_cap = 150'000;
      so.seed = HashSeed(99, 1000 + j);
      rrset::SampleSizer sizer(f.instance->graph(), f.instance->ad_probs(j),
                               so);
      EXPECT_GT(st.theta, sizer.ThetaFor(1)) << "ad " << j;
      EXPECT_GE(st.latent_seed_size, st.seeds);
    }
  }
}

// Bit-identity on the default-influence fixture too: the growth path that
// now actually runs must stay deterministic at any thread count, async on
// and off.
TEST(GrowthRegimeTest, DefaultInfluenceBitIdenticalAcrossThreadCounts) {
  DefaultInfluenceFixture f;
  for (const bool async : {false, true}) {
    SCOPED_TRACE(async ? "async" : "sync");
    TiOptions options = f.Options(async);
    TiResult reference;
    for (uint32_t threads : {1u, 2u, 8u}) {
      SCOPED_TRACE(testing::Message() << threads << " threads");
      options.num_threads = threads;
      auto result = RunTiCsrm(*f.instance, options);
      ASSERT_TRUE(result.ok()) << result.status().message();
      if (threads == 1u) {
        reference = result.value();
        EXPECT_GT(reference.total_growth_events, 0u);
        continue;
      }
      ExpectTiResultsIdentical(reference, result.value());
    }
  }
}

// Deterministic in the seed with async on (run-to-run, same thread count).
TEST(AsyncGrowthTest, DeterministicInSeed) {
  AsyncFixture f;
  TiOptions options;
  options.epsilon = 0.3;
  options.seed = 4321;
  options.theta_cap = 200'000;
  options.async_growth = true;
  options.num_threads = 4;
  auto a = RunTiCsrm(*f.instance, options);
  auto b = RunTiCsrm(*f.instance, options);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectTiResultsIdentical(a.value(), b.value());
}

}  // namespace
}  // namespace isa::core
